//! Leader-side execution of directory operations.
//!
//! [`ClientState::serve_local`] runs an operation against a led
//! directory's [`Metatable`] — for forwarded RPCs and for the client's
//! own local operations alike — journaling every mutation (§III-E) and
//! enforcing permissions at the leader. Holds the metatable (rank
//! *Metatable*); the only lower-rank lock it touches is the data cache
//! / handle shards (rank *Leaf*) via lease-conflict flush broadcasts.

use super::super::{ClientState, TableGuard};
use crate::config::CommitMode;
use crate::journal::{OpStamps, Transaction};
use crate::metatable::Metatable;
use crate::partition::PartitionMap;
use crate::prt::Prt;
use crate::rpc::{OpBody, OpRequest, OpResponse};
use arkfs_lease::FileLeaseDecision;
use arkfs_simkit::Port;
use arkfs_telemetry::{CtxGuard, PID_CLIENT};
use arkfs_vfs::{perm, Credentials, FileType, FsError, FsResult, Ino, AM_EXEC, AM_READ, AM_WRITE};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

impl ClientState {
    /// Execute an operation as the leader of its directory. Runs both for
    /// forwarded RPCs and for the client's own local operations.
    pub(crate) fn serve_local(
        &self,
        port: &Port,
        table: &Arc<Mutex<Metatable>>,
        req: OpRequest,
    ) -> OpResponse {
        let OpRequest { creds, trace, body } = req;
        // Serve under the originating op's trace context: spans recorded
        // below (journal commits, store I/O, meta churn) link back to the
        // client op that issued the request, whether it arrived over the
        // bus or was served locally.
        let _trace_guard = CtxGuard::install(trace);
        let config = self.cluster.config();
        let prt = self.cluster.prt();
        let now = port.now();
        let mut t: TableGuard<'_> = self.lock_table(table);
        // A frozen table is mid-handoff (split/merge drain): its journal
        // is being sealed under the *old* map, so no new work may enter.
        if t.frozen {
            return OpResponse::NotLeader;
        }
        // Authority: the routed table must own the op. A mismatch means
        // the sender (or our serve()) routed under a stale partition map;
        // NotLeader makes it refresh and re-route — we never serve a name
        // outside our bucket range.
        if !owned_by(&t, &body) {
            return OpResponse::NotLeader;
        }
        let pkey = t.pkey();

        // Seal the running compound transaction when its buffering window
        // elapsed (§III-E). Forced commits (2PC prepares/decisions, sync-
        // mode fsync semantics) are charged to the caller; window-
        // triggered commits are the commit threads' work and run on a
        // background timeline that does not stall the application (the
        // store still sees their load). Every background flush is tracked
        // on the directory's commit lane so fsync/sync_all barriers can
        // drain it; in async mode the lane's in-flight bound pushes back
        // on the caller when the pipeline runs ahead of the store.
        let maybe_commit = |t: &mut Metatable, force: bool| -> FsResult<()> {
            let lane = self.lane(pkey);
            if force {
                t.journal
                    .commit(prt, port, &lane.res, config.spec.local_meta_op)?;
                return Ok(());
            }
            match config.commit_mode {
                CommitMode::Sync => {
                    if t.journal.commit_due(
                        port.now(),
                        config.journal_window,
                        config.journal_max_entries,
                    ) {
                        let background = Port::starting_at(port.now());
                        // Spans on the background timeline follow from
                        // (rather than nest under) the op that tripped
                        // the window: the ack does not wait for them.
                        let _bg = CtxGuard::install(trace.as_background());
                        t.journal
                            .commit(prt, &background, &lane.res, config.spec.local_meta_op)?;
                        lane.record_flight(background.now());
                    }
                }
                CommitMode::Async => {
                    if t.journal.commit_due(
                        port.now(),
                        config.async_commit_window,
                        config.journal_max_entries,
                    ) {
                        // Backpressure: a full in-flight window stalls the
                        // caller until the lane's oldest flight lands.
                        let wait_start = port.now();
                        let admitted = lane.admit(wait_start, config.async_commit_max_inflight);
                        port.wait_until(admitted);
                        let wait_end = port.now();
                        if wait_end > wait_start {
                            let tracer = &self.telemetry.tracer;
                            if tracer.enabled() {
                                tracer.record(
                                    PID_CLIENT,
                                    self.id.0,
                                    "lane.wait",
                                    "lane",
                                    wait_start,
                                    wait_end,
                                );
                            }
                        }
                        if t.journal.seal().is_some() {
                            let background = Port::starting_at(port.now());
                            // Background flush: follow-from, not child
                            // (see the Sync arm above).
                            let _bg = CtxGuard::install(trace.as_background());
                            if config.group_commit {
                                self.flush_group(prt, &background, pkey, t)?;
                            } else {
                                t.journal.flush_sealed(
                                    prt,
                                    &background,
                                    &lane.res,
                                    config.spec.local_meta_op,
                                )?;
                            }
                            lane.record_flight(background.now());
                        }
                    }
                }
            }
            Ok(())
        };

        // Stamp a mutation for `op.<name>.durable_ns` attribution, run
        // the commit policy, then sample this partition's sealed depth
        // and feed the append-rate split/merge trigger.
        let stamp_commit = |t: &mut Metatable, op: &'static str, force: bool| -> FsResult<()> {
            t.journal.stamp(op, now, trace);
            let result = maybe_commit(t, force);
            if let Some(depth) = &t.sealed_depth {
                depth.set(t.journal.sealed_len() as i64);
            }
            if config.partition_split_rate > 0 || config.partition_merge_rate > 0 {
                let rate = t.note_append(now);
                if rate > 0 {
                    let max = config
                        .dir_partition_max
                        .min(u32::try_from(config.dentry_buckets).unwrap_or(u32::MAX))
                        .max(1);
                    let pcount = t.pcount();
                    if config.partition_split_rate > 0
                        && rate >= config.partition_split_rate
                        && pcount < max
                    {
                        self.pending_splits
                            .lock()
                            .push((t.ino(), (pcount * 2).min(max)));
                    } else if config.partition_merge_rate > 0
                        && t.partition() == 0
                        && pcount > 1
                        && rate < config.partition_merge_rate
                    {
                        self.pending_splits.lock().push((t.ino(), pcount / 2));
                    }
                }
            }
            result
        };

        let dir_perm = |t: &Metatable, want: u8| -> FsResult<()> {
            perm::check_access(&creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, want)
        };

        match body {
            OpBody::Lookup { name, .. } => {
                if let Err(e) = dir_perm(&t, AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t.lookup(&name) {
                    Some(entry) => OpResponse::Entry {
                        ino: entry.ino,
                        ftype: entry.ftype,
                        rec: t.child_inode(entry.ino).cloned(),
                    },
                    None => OpResponse::Err(FsError::NotFound),
                }
            }
            OpBody::DirInode { .. } => OpResponse::Inode(t.dir.clone()),
            OpBody::Create { name, rec, .. } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t
                    .create_child(rec, &name, now)
                    .and_then(|()| stamp_commit(&mut t, "op.create", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::AddSubdir { name, child, .. } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t
                    .add_subdir(&name, child, now)
                    .and_then(|()| stamp_commit(&mut t, "op.mkdir", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::Unlink { name, .. } => {
                let victim_uid = match t.lookup(&name) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t.unlink_child(&name, now) {
                    Ok(rec) => match stamp_commit(&mut t, "op.unlink", false) {
                        Ok(()) => OpResponse::Inode(rec),
                        Err(e) => OpResponse::Err(e),
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RemoveSubdir { name, .. } => {
                let child_ino = match t.lookup(&name) {
                    Some(e) if e.ftype == FileType::Directory => e.ino,
                    Some(_) => return OpResponse::Err(FsError::NotADirectory),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                let victim_uid = prt
                    .load_inode(port, child_ino)
                    .map(|r| r.uid)
                    .unwrap_or(t.dir.uid);
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t
                    .remove_subdir(&name, now)
                    .and_then(|_| stamp_commit(&mut t, "op.rmdir", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::Readdir { .. } => {
                if let Err(e) = dir_perm(&t, AM_READ) {
                    return OpResponse::Err(e);
                }
                // The partition count rides along as the staleness guard:
                // readdir carries no name for the ownership check, so the
                // caller compares this against the count it fanned out
                // over and redoes the merge on mismatch.
                OpResponse::Entries {
                    entries: t.readdir(),
                    partitions: t.pcount(),
                }
            }
            OpBody::SetSize { ino, size, .. } => {
                if let Some(rec) = t.child_inode(ino) {
                    if let Err(e) =
                        perm::check_access(&creds, rec.uid, rec.gid, rec.mode, &rec.acl, AM_WRITE)
                    {
                        return OpResponse::Err(e);
                    }
                }
                // fsync semantics: in sync mode the size update must be
                // durable before the ack; in async mode it seals into the
                // pipeline and the explicit fsync/sync_all barrier
                // (FsyncDir) provides durability.
                let force = config.commit_mode == CommitMode::Sync;
                match t
                    .set_child_size(ino, size, now)
                    .and_then(|()| stamp_commit(&mut t, "op.setsize", force))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAttrChild { ino, attr, .. } => {
                let owner = match t.child_inode(ino) {
                    Some(rec) => rec.uid,
                    None => return OpResponse::Err(FsError::Stale),
                };
                let changing_owner = attr.uid.is_some() || attr.gid.is_some();
                if let Err(e) = perm::check_setattr(&creds, owner, changing_owner) {
                    return OpResponse::Err(e);
                }
                match t.set_child_attr(ino, &attr, now) {
                    Ok(rec) => match stamp_commit(&mut t, "op.setattr", false) {
                        Ok(()) => OpResponse::Inode(rec),
                        Err(e) => OpResponse::Err(e),
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAttrDir { attr, .. } => {
                let changing_owner = attr.uid.is_some() || attr.gid.is_some();
                if let Err(e) = perm::check_setattr(&creds, t.dir.uid, changing_owner) {
                    return OpResponse::Err(e);
                }
                let rec = t.set_dir_attr(&attr, now);
                match stamp_commit(&mut t, "op.setattr", false) {
                    Ok(()) => OpResponse::Inode(rec),
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAcl { target, acl, .. } => {
                let owner = if target == t.ino() {
                    t.dir.uid
                } else {
                    match t.child_inode(target) {
                        Some(rec) => rec.uid,
                        None => return OpResponse::Err(FsError::Stale),
                    }
                };
                if let Err(e) = perm::check_setattr(&creds, owner, false) {
                    return OpResponse::Err(e);
                }
                match t
                    .set_acl(target, acl, now)
                    .and_then(|()| stamp_commit(&mut t, "op.set_acl", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameLocal { from, to, .. } => {
                let victim_uid = match t.lookup(&from) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t
                    .rename_local(&from, &to, now)
                    .and_then(|()| stamp_commit(&mut t, "op.rename", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameSrcPrepare {
                name, txid, peer, ..
            } => {
                let victim_uid = match t.lookup(&name) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                t.journal.append(
                    crate::journal::JournalOp::RenamePrepare {
                        txid,
                        peer_dir: peer,
                        ops: vec![crate::journal::JournalOp::RemoveDentry { name: name.clone() }],
                    },
                    now,
                );
                let (entry, rec) = match t.detach_child(&name, now) {
                    Ok(v) => v,
                    Err(e) => return OpResponse::Err(e),
                };
                // 2PC prepares stay forced-durable in both modes: the
                // decision protocol presumes the prepare record survives.
                match stamp_commit(&mut t, "op.rename", true) {
                    Ok(()) => OpResponse::Detached {
                        ino: entry.ino,
                        ftype: entry.ftype,
                        rec,
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameDstPrepare {
                name,
                txid,
                peer,
                ino,
                ftype,
                rec,
                ..
            } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                // POSIX rename replaces an existing file target; the
                // victim's removal rides inside the 2PC prepare so it is
                // atomic with the move. Directory targets are rejected
                // (cross-directory directory replacement is out of scope).
                let existing = t.lookup(&name).map(|e| (e.name.clone(), e.ftype));
                let victim = match existing {
                    Some((_, FileType::Directory)) => {
                        return OpResponse::Err(FsError::AlreadyExists);
                    }
                    Some((victim_name, _)) => match t.unlink_child(&victim_name, now) {
                        Ok(rec) => Some(rec),
                        Err(e) => return OpResponse::Err(e),
                    },
                    None => None,
                };
                let mut ops = vec![crate::journal::JournalOp::UpsertDentry {
                    name: name.clone(),
                    ino,
                    ftype,
                }];
                if let Some(rec) = &rec {
                    ops.push(crate::journal::JournalOp::PutInode(rec.clone()));
                }
                t.journal.append(
                    crate::journal::JournalOp::RenamePrepare {
                        txid,
                        peer_dir: peer,
                        ops,
                    },
                    now,
                );
                if let Err(e) = t.attach_child(&name, ino, ftype, rec, now) {
                    return OpResponse::Err(e);
                }
                match stamp_commit(&mut t, "op.rename", true) {
                    Ok(()) => match victim {
                        Some(rec) => OpResponse::Inode(rec),
                        None => OpResponse::Ok,
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameDecide {
                txid, commit, undo, ..
            } => {
                if commit {
                    t.journal
                        .append(crate::journal::JournalOp::RenameCommit { txid }, now);
                } else {
                    t.journal
                        .append(crate::journal::JournalOp::RenameAbort { txid }, now);
                    if let Some((name, ino, ftype, rec)) = undo {
                        if let Err(e) = t.attach_child(&name, ino, ftype, rec, now) {
                            return OpResponse::Err(e);
                        }
                    }
                }
                match stamp_commit(&mut t, "op.rename", true) {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::FsyncDir { .. } => {
                // Durability barrier: flush running + sealed transactions
                // on the caller's timeline, then drain the lane's tracked
                // in-flight background flushes, so everything this
                // partition acked is durable when we respond.
                let lane = self.lane(pkey);
                match t
                    .journal
                    .commit(prt, port, &lane.res, config.spec.local_meta_op)
                {
                    Ok(()) => {
                        let done = lane.drain_until(port.now());
                        port.wait_until(done);
                        OpResponse::Ok
                    }
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::AcquireReadLease { file, client, .. } => {
                let decision = t.file_leases.acquire_read(client, file, now);
                self.broadcast_flushes(port, &mut t, file, &decision);
                OpResponse::Lease(decision)
            }
            OpBody::AcquireWriteLease { file, client, .. } => {
                let decision = t.file_leases.acquire_write(client, file, now);
                self.broadcast_flushes(port, &mut t, file, &decision);
                OpResponse::Lease(decision)
            }
            OpBody::ReleaseFileLease { file, client, .. } => {
                t.file_leases.release(client, file, now);
                OpResponse::Ok
            }
            OpBody::FlushCache { .. } | OpBody::RelinquishPartition { .. } => {
                unreachable!("handled in serve()")
            }
        }
    }

    /// One *group* flight: our freshly-sealed transactions ride together
    /// with any co-laned directories' due work in a single batched
    /// multi-PUT, so directories sharing a commit lane amortize the lane
    /// reservation and the store round trip instead of queueing one
    /// flight each.
    ///
    /// Donor tables are reached through the lane's member registry with
    /// raw `try_lock` — deliberately bypassing the lock-order checker,
    /// which (correctly) forbids *blocking* on a second rank-Metatable
    /// lock while one is held. `try_lock` cannot deadlock: a busy donor
    /// is simply left for its own next commit. Frozen (mid-handoff)
    /// donors are skipped too.
    fn flush_group(&self, prt: &Prt, port: &Port, pkey: Ino, own: &mut Metatable) -> FsResult<()> {
        let config = self.cluster.config();
        let lane = self.lane(pkey);
        let members = lane.members_snapshot();
        let mut donors = Vec::new();
        for (member, table) in &members {
            if *member == pkey {
                continue;
            }
            if let Some(mut g) = table.try_lock() {
                // A donor rides once its window is at least half elapsed:
                // this flight is already paid for, and co-laned windows
                // opened within scheduling jitter of each other would
                // otherwise each miss "due" by microseconds and pay their
                // own flight moments later. The half-window floor bounds
                // compound-transaction fragmentation at 2× the seal rate.
                if !g.frozen
                    && g.journal.commit_due(
                        port.now(),
                        config.async_commit_window / 2,
                        config.journal_max_entries,
                    )
                {
                    g.journal.seal();
                }
                if g.journal.sealed_len() > 0 {
                    donors.push(g);
                }
            }
        }
        let own_taken = own.journal.take_sealed();
        let donor_taken: Vec<Vec<(Transaction, OpStamps)>> =
            donors.iter_mut().map(|g| g.journal.take_sealed()).collect();
        let t0 = port.now();
        let done = lane.res.reserve(t0, config.spec.local_meta_op);
        port.wait_until(done);
        let items: Vec<(Ino, u64, Bytes)> = own_taken
            .iter()
            .chain(donor_taken.iter().flatten())
            .map(|(txn, _)| (txn.dir, txn.seq, txn.seal()))
            .collect();
        match prt.put_journal_many(port, &items) {
            Ok(()) => {
                let end = port.now();
                if !own_taken.is_empty() {
                    prt.meta_span("journal.commit", pkey, t0, end);
                }
                for (txn, stamps) in own_taken {
                    for (op, start, ctx) in stamps {
                        prt.record_durable(op, pkey, start, end, ctx);
                    }
                    own.journal.push_committed(txn);
                }
                for (g, taken) in donors.iter_mut().zip(donor_taken) {
                    prt.meta_span("journal.commit", g.pkey(), t0, end);
                    for (txn, stamps) in taken {
                        for (op, start, ctx) in stamps {
                            prt.record_durable(op, g.pkey(), start, end, ctx);
                        }
                        g.journal.push_committed(txn);
                    }
                    if let Some(depth) = &g.sealed_depth {
                        depth.set(g.journal.sealed_len() as i64);
                    }
                }
                Ok(())
            }
            Err(e) => {
                // Unseal everything: the group retries from its members'
                // running windows, exactly like a failed solo flush.
                prt.count_commit_retry();
                let now = port.now();
                self.telemetry.flight.record(
                    self.id.0,
                    now,
                    "commit.rollback",
                    donors.len() as i64,
                    "group flush failed; transactions unsealed for retry",
                );
                own.journal.restore_sealed(own_taken, now);
                for (g, taken) in donors.iter_mut().zip(donor_taken) {
                    g.journal.restore_sealed(taken, now);
                }
                Err(e)
            }
        }
    }

    /// On a lease conflict the leader "broadcasts cache flushing requests
    /// to prevent stale cache entries on other clients' object cache"
    /// (§III-D). Flushed sizes feed back into the child's inode.
    fn broadcast_flushes(
        &self,
        port: &Port,
        t: &mut Metatable,
        file: Ino,
        decision: &FileLeaseDecision,
    ) {
        let FileLeaseDecision::Direct { flush, .. } = decision else {
            return;
        };
        let now = port.now();
        for &target in flush {
            if target == self.id {
                // Flush our own cache inline.
                if let OpResponse::Flushed { size: Some(size) } = self.serve_flush(port, file) {
                    let _ = t.set_child_size(file, size, now);
                }
                continue;
            }
            // Crashed holders simply drain via lease expiry.
            if let Ok(OpResponse::Flushed { size: Some(size) }) = self.cluster.call_ops(
                port,
                target,
                OpRequest::new(Credentials::root(), OpBody::FlushCache { file }),
            ) {
                let current = t.child_inode(file).map(|r| r.size).unwrap_or(0);
                if size > current {
                    let _ = t.set_child_size(file, size, now);
                }
            }
        }
    }
}

/// The directory an operation must be served by.
pub(crate) fn target_dir(body: &OpBody) -> Option<Ino> {
    Some(match body {
        OpBody::Lookup { dir, .. }
        | OpBody::DirInode { dir }
        | OpBody::Create { dir, .. }
        | OpBody::AddSubdir { dir, .. }
        | OpBody::Unlink { dir, .. }
        | OpBody::RemoveSubdir { dir, .. }
        | OpBody::Readdir { dir, .. }
        | OpBody::SetSize { dir, .. }
        | OpBody::SetAttrChild { dir, .. }
        | OpBody::SetAttrDir { dir, .. }
        | OpBody::SetAcl { dir, .. }
        | OpBody::RenameLocal { dir, .. }
        | OpBody::RenameSrcPrepare { dir, .. }
        | OpBody::RenameDstPrepare { dir, .. }
        | OpBody::RenameDecide { dir, .. }
        | OpBody::AcquireReadLease { dir, .. }
        | OpBody::AcquireWriteLease { dir, .. }
        | OpBody::ReleaseFileLease { dir, .. }
        | OpBody::FsyncDir { dir, .. }
        | OpBody::RelinquishPartition { dir, .. } => *dir,
        OpBody::FlushCache { .. } => return None,
    })
}

/// The partition index an operation routes to under `pmap`.
///
/// Name-carrying ops hash the name straight to the owning partition;
/// readdir/fsync/relinquish address a partition explicitly (the pkey
/// formula is count-independent, so an explicit index stays meaningful
/// even under a stale map); directory-level ops (dir inode, dir attrs)
/// live on partition 0; file-lease ops shard by file ino.
pub(crate) fn route_of(body: &OpBody, pmap: &PartitionMap, buckets: u64) -> u32 {
    // Explicitly-addressed ops keep their index regardless of the map.
    if let OpBody::Readdir { partition, .. }
    | OpBody::FsyncDir { partition, .. }
    | OpBody::RelinquishPartition { partition, .. } = body
    {
        return *partition;
    }
    if pmap.partitions <= 1 {
        return 0;
    }
    match body {
        OpBody::Lookup { name, .. }
        | OpBody::Create { name, .. }
        | OpBody::AddSubdir { name, .. }
        | OpBody::Unlink { name, .. }
        | OpBody::RemoveSubdir { name, .. }
        | OpBody::SetSize { name, .. }
        | OpBody::SetAttrChild { name, .. }
        | OpBody::RenameSrcPrepare { name, .. }
        | OpBody::RenameDstPrepare { name, .. }
        | OpBody::RenameDecide { name, .. } => pmap.partition_of_name(name, buckets),
        // Same-partition by construction (the client falls back to the
        // 2PC path otherwise); route by the source name.
        OpBody::RenameLocal { from, .. } => pmap.partition_of_name(from, buckets),
        OpBody::SetAcl {
            name, target, dir, ..
        } => {
            if target == dir {
                0
            } else {
                pmap.partition_of_name(name, buckets)
            }
        }
        // File-lease service shards by file ino, which (unlike the
        // name) is stable across renames: every request for one file
        // meets at one partition, but a hot directory's lease traffic
        // spreads over all leaders instead of serializing on partition
        // 0's — with per-create acquire + release RPCs that would cap
        // aggregate create throughput at one leader's service rate no
        // matter the partition count.
        OpBody::AcquireReadLease { file, .. }
        | OpBody::AcquireWriteLease { file, .. }
        | OpBody::ReleaseFileLease { file, .. } => (file % pmap.partitions as u128) as u32,
        OpBody::DirInode { .. }
        | OpBody::SetAttrDir { .. }
        | OpBody::FlushCache { .. }
        | OpBody::Readdir { .. }
        | OpBody::FsyncDir { .. }
        | OpBody::RelinquishPartition { .. } => 0,
    }
}

/// Leader-side authority check for a routed op against the led
/// partition (see `serve_local`). Unpartitioned tables own everything
/// that reaches them: wrong-partition requests route to a pkey nobody
/// leads and bounce as `NotLeader` before getting here.
fn owned_by(t: &Metatable, body: &OpBody) -> bool {
    if t.pcount() <= 1 {
        return true;
    }
    match body {
        OpBody::Lookup { name, .. }
        | OpBody::Create { name, .. }
        | OpBody::AddSubdir { name, .. }
        | OpBody::Unlink { name, .. }
        | OpBody::RemoveSubdir { name, .. }
        | OpBody::SetSize { name, .. }
        | OpBody::SetAttrChild { name, .. }
        | OpBody::RenameSrcPrepare { name, .. }
        | OpBody::RenameDstPrepare { name, .. }
        | OpBody::RenameDecide { name, .. } => t.owns_name(name),
        OpBody::RenameLocal { from, to, .. } => t.owns_name(from) && t.owns_name(to),
        OpBody::SetAcl {
            name, target, dir, ..
        } => {
            if target == dir {
                t.partition() == 0
            } else {
                t.owns_name(name)
            }
        }
        OpBody::Readdir { partition, .. } | OpBody::FsyncDir { partition, .. } => {
            t.partition() == *partition
        }
        OpBody::AcquireReadLease { file, .. }
        | OpBody::AcquireWriteLease { file, .. }
        | OpBody::ReleaseFileLease { file, .. } => {
            t.partition() == (*file % t.pcount() as u128) as u32
        }
        OpBody::DirInode { .. } | OpBody::SetAttrDir { .. } => t.partition() == 0,
        // Addressed before dispatch (serve()'s special cases).
        OpBody::FlushCache { .. } | OpBody::RelinquishPartition { .. } => true,
    }
}
