//! Leader-side execution of directory operations.
//!
//! [`ClientState::serve_local`] runs an operation against a led
//! directory's [`Metatable`] — for forwarded RPCs and for the client's
//! own local operations alike — journaling every mutation (§III-E) and
//! enforcing permissions at the leader. Holds the metatable (rank
//! *Metatable*); the only lower-rank lock it touches is the data cache
//! / handle shards (rank *Leaf*) via lease-conflict flush broadcasts.

use super::super::{ClientState, TableGuard};
use crate::config::CommitMode;
use crate::metatable::Metatable;
use crate::rpc::{OpBody, OpRequest, OpResponse};
use arkfs_lease::FileLeaseDecision;
use arkfs_simkit::Port;
use arkfs_vfs::{perm, Credentials, FileType, FsError, FsResult, Ino, AM_EXEC, AM_READ, AM_WRITE};
use parking_lot::Mutex;
use std::sync::Arc;

impl ClientState {
    /// Execute an operation as the leader of its directory. Runs both for
    /// forwarded RPCs and for the client's own local operations.
    pub(crate) fn serve_local(
        &self,
        port: &Port,
        table: &Arc<Mutex<Metatable>>,
        req: OpRequest,
    ) -> OpResponse {
        let OpRequest { creds, body } = req;
        let config = self.cluster.config();
        let prt = self.cluster.prt();
        let now = port.now();
        let mut t: TableGuard<'_> = self.lock_table(table);
        let dir_ino = t.ino();

        // Seal the running compound transaction when its buffering window
        // elapsed (§III-E). Forced commits (2PC prepares/decisions, sync-
        // mode fsync semantics) are charged to the caller; window-
        // triggered commits are the commit threads' work and run on a
        // background timeline that does not stall the application (the
        // store still sees their load). Every background flush is tracked
        // on the directory's commit lane so fsync/sync_all barriers can
        // drain it; in async mode the lane's in-flight bound pushes back
        // on the caller when the pipeline runs ahead of the store.
        let maybe_commit = |t: &mut Metatable, force: bool| -> FsResult<()> {
            let lane = self.lane(dir_ino);
            if force {
                t.journal
                    .commit(prt, port, &lane.res, config.spec.local_meta_op)?;
                return Ok(());
            }
            match config.commit_mode {
                CommitMode::Sync => {
                    if t.journal.commit_due(
                        port.now(),
                        config.journal_window,
                        config.journal_max_entries,
                    ) {
                        let background = Port::starting_at(port.now());
                        t.journal
                            .commit(prt, &background, &lane.res, config.spec.local_meta_op)?;
                        lane.record_flight(background.now());
                    }
                }
                CommitMode::Async => {
                    if t.journal.commit_due(
                        port.now(),
                        config.async_commit_window,
                        config.journal_max_entries,
                    ) {
                        // Backpressure: a full in-flight window stalls the
                        // caller until the lane's oldest flight lands.
                        let admitted = lane.admit(port.now(), config.async_commit_max_inflight);
                        port.wait_until(admitted);
                        if t.journal.seal().is_some() {
                            let background = Port::starting_at(port.now());
                            t.journal.flush_sealed(
                                prt,
                                &background,
                                &lane.res,
                                config.spec.local_meta_op,
                            )?;
                            lane.record_flight(background.now());
                        }
                    }
                }
            }
            Ok(())
        };

        // Stamp a mutation for `op.<name>.durable_ns` attribution, then
        // run the commit policy.
        let stamp_commit = |t: &mut Metatable, op: &'static str, force: bool| -> FsResult<()> {
            t.journal.stamp(op, now);
            maybe_commit(t, force)
        };

        let dir_perm = |t: &Metatable, want: u8| -> FsResult<()> {
            perm::check_access(&creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, want)
        };

        match body {
            OpBody::Lookup { name, .. } => {
                if let Err(e) = dir_perm(&t, AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t.lookup(&name) {
                    Some(entry) => OpResponse::Entry {
                        ino: entry.ino,
                        ftype: entry.ftype,
                        rec: t.child_inode(entry.ino).cloned(),
                    },
                    None => OpResponse::Err(FsError::NotFound),
                }
            }
            OpBody::DirInode { .. } => OpResponse::Inode(t.dir.clone()),
            OpBody::Create { name, rec, .. } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t
                    .create_child(rec, &name, now)
                    .and_then(|()| stamp_commit(&mut t, "op.create", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::AddSubdir { name, child, .. } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t
                    .add_subdir(&name, child, now)
                    .and_then(|()| stamp_commit(&mut t, "op.mkdir", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::Unlink { name, .. } => {
                let victim_uid = match t.lookup(&name) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t.unlink_child(&name, now) {
                    Ok(rec) => match stamp_commit(&mut t, "op.unlink", false) {
                        Ok(()) => OpResponse::Inode(rec),
                        Err(e) => OpResponse::Err(e),
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RemoveSubdir { name, .. } => {
                let child_ino = match t.lookup(&name) {
                    Some(e) if e.ftype == FileType::Directory => e.ino,
                    Some(_) => return OpResponse::Err(FsError::NotADirectory),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                let victim_uid = prt
                    .load_inode(port, child_ino)
                    .map(|r| r.uid)
                    .unwrap_or(t.dir.uid);
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t
                    .remove_subdir(&name, now)
                    .and_then(|_| stamp_commit(&mut t, "op.rmdir", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::Readdir { .. } => {
                if let Err(e) = dir_perm(&t, AM_READ) {
                    return OpResponse::Err(e);
                }
                OpResponse::Entries(t.readdir())
            }
            OpBody::SetSize { ino, size, .. } => {
                if let Some(rec) = t.child_inode(ino) {
                    if let Err(e) =
                        perm::check_access(&creds, rec.uid, rec.gid, rec.mode, &rec.acl, AM_WRITE)
                    {
                        return OpResponse::Err(e);
                    }
                }
                // fsync semantics: in sync mode the size update must be
                // durable before the ack; in async mode it seals into the
                // pipeline and the explicit fsync/sync_all barrier
                // (FsyncDir) provides durability.
                let force = config.commit_mode == CommitMode::Sync;
                match t
                    .set_child_size(ino, size, now)
                    .and_then(|()| stamp_commit(&mut t, "op.setsize", force))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAttrChild { ino, attr, .. } => {
                let owner = match t.child_inode(ino) {
                    Some(rec) => rec.uid,
                    None => return OpResponse::Err(FsError::Stale),
                };
                let changing_owner = attr.uid.is_some() || attr.gid.is_some();
                if let Err(e) = perm::check_setattr(&creds, owner, changing_owner) {
                    return OpResponse::Err(e);
                }
                match t.set_child_attr(ino, &attr, now) {
                    Ok(rec) => match stamp_commit(&mut t, "op.setattr", false) {
                        Ok(()) => OpResponse::Inode(rec),
                        Err(e) => OpResponse::Err(e),
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAttrDir { attr, .. } => {
                let changing_owner = attr.uid.is_some() || attr.gid.is_some();
                if let Err(e) = perm::check_setattr(&creds, t.dir.uid, changing_owner) {
                    return OpResponse::Err(e);
                }
                let rec = t.set_dir_attr(&attr, now);
                match stamp_commit(&mut t, "op.setattr", false) {
                    Ok(()) => OpResponse::Inode(rec),
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAcl { target, acl, .. } => {
                let owner = if target == t.ino() {
                    t.dir.uid
                } else {
                    match t.child_inode(target) {
                        Some(rec) => rec.uid,
                        None => return OpResponse::Err(FsError::Stale),
                    }
                };
                if let Err(e) = perm::check_setattr(&creds, owner, false) {
                    return OpResponse::Err(e);
                }
                match t
                    .set_acl(target, acl, now)
                    .and_then(|()| stamp_commit(&mut t, "op.set_acl", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameLocal { from, to, .. } => {
                let victim_uid = match t.lookup(&from) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t
                    .rename_local(&from, &to, now)
                    .and_then(|()| stamp_commit(&mut t, "op.rename", false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameSrcPrepare {
                name, txid, peer, ..
            } => {
                let victim_uid = match t.lookup(&name) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                t.journal.append(
                    crate::journal::JournalOp::RenamePrepare {
                        txid,
                        peer_dir: peer,
                        ops: vec![crate::journal::JournalOp::RemoveDentry { name: name.clone() }],
                    },
                    now,
                );
                let (entry, rec) = match t.detach_child(&name, now) {
                    Ok(v) => v,
                    Err(e) => return OpResponse::Err(e),
                };
                // 2PC prepares stay forced-durable in both modes: the
                // decision protocol presumes the prepare record survives.
                match stamp_commit(&mut t, "op.rename", true) {
                    Ok(()) => OpResponse::Detached {
                        ino: entry.ino,
                        ftype: entry.ftype,
                        rec,
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameDstPrepare {
                name,
                txid,
                peer,
                ino,
                ftype,
                rec,
                ..
            } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                // POSIX rename replaces an existing file target; the
                // victim's removal rides inside the 2PC prepare so it is
                // atomic with the move. Directory targets are rejected
                // (cross-directory directory replacement is out of scope).
                let existing = t.lookup(&name).map(|e| (e.name.clone(), e.ftype));
                let victim = match existing {
                    Some((_, FileType::Directory)) => {
                        return OpResponse::Err(FsError::AlreadyExists);
                    }
                    Some((victim_name, _)) => match t.unlink_child(&victim_name, now) {
                        Ok(rec) => Some(rec),
                        Err(e) => return OpResponse::Err(e),
                    },
                    None => None,
                };
                let mut ops = vec![crate::journal::JournalOp::UpsertDentry {
                    name: name.clone(),
                    ino,
                    ftype,
                }];
                if let Some(rec) = &rec {
                    ops.push(crate::journal::JournalOp::PutInode(rec.clone()));
                }
                t.journal.append(
                    crate::journal::JournalOp::RenamePrepare {
                        txid,
                        peer_dir: peer,
                        ops,
                    },
                    now,
                );
                if let Err(e) = t.attach_child(&name, ino, ftype, rec, now) {
                    return OpResponse::Err(e);
                }
                match stamp_commit(&mut t, "op.rename", true) {
                    Ok(()) => match victim {
                        Some(rec) => OpResponse::Inode(rec),
                        None => OpResponse::Ok,
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameDecide {
                txid, commit, undo, ..
            } => {
                if commit {
                    t.journal
                        .append(crate::journal::JournalOp::RenameCommit { txid }, now);
                } else {
                    t.journal
                        .append(crate::journal::JournalOp::RenameAbort { txid }, now);
                    if let Some((name, ino, ftype, rec)) = undo {
                        if let Err(e) = t.attach_child(&name, ino, ftype, rec, now) {
                            return OpResponse::Err(e);
                        }
                    }
                }
                match stamp_commit(&mut t, "op.rename", true) {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::FsyncDir { .. } => {
                // Durability barrier: flush running + sealed transactions
                // on the caller's timeline, then drain the lane's tracked
                // in-flight background flushes, so everything this
                // directory acked is durable when we respond.
                let lane = self.lane(dir_ino);
                match t
                    .journal
                    .commit(prt, port, &lane.res, config.spec.local_meta_op)
                {
                    Ok(()) => {
                        let done = lane.drain_until(port.now());
                        port.wait_until(done);
                        OpResponse::Ok
                    }
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::AcquireReadLease { file, client, .. } => {
                let decision = t.file_leases.acquire_read(client, file, now);
                self.broadcast_flushes(port, &mut t, file, &decision);
                OpResponse::Lease(decision)
            }
            OpBody::AcquireWriteLease { file, client, .. } => {
                let decision = t.file_leases.acquire_write(client, file, now);
                self.broadcast_flushes(port, &mut t, file, &decision);
                OpResponse::Lease(decision)
            }
            OpBody::ReleaseFileLease { file, client, .. } => {
                t.file_leases.release(client, file, now);
                OpResponse::Ok
            }
            OpBody::FlushCache { .. } => unreachable!("handled in serve()"),
        }
    }

    /// On a lease conflict the leader "broadcasts cache flushing requests
    /// to prevent stale cache entries on other clients' object cache"
    /// (§III-D). Flushed sizes feed back into the child's inode.
    fn broadcast_flushes(
        &self,
        port: &Port,
        t: &mut Metatable,
        file: Ino,
        decision: &FileLeaseDecision,
    ) {
        let FileLeaseDecision::Direct { flush, .. } = decision else {
            return;
        };
        let now = port.now();
        for &target in flush {
            if target == self.id {
                // Flush our own cache inline.
                if let OpResponse::Flushed { size: Some(size) } = self.serve_flush(port, file) {
                    let _ = t.set_child_size(file, size, now);
                }
                continue;
            }
            // Crashed holders simply drain via lease expiry.
            if let Ok(OpResponse::Flushed { size: Some(size) }) = self.cluster.ops_bus().call(
                port,
                target,
                OpRequest {
                    creds: Credentials::root(),
                    body: OpBody::FlushCache { file },
                },
            ) {
                let current = t.child_inode(file).map(|r| r.size).unwrap_or(0);
                if size > current {
                    let _ = t.set_child_size(file, size, now);
                }
            }
        }
    }
}

/// The directory an operation must be served by.
pub(crate) fn target_dir(body: &OpBody) -> Option<Ino> {
    Some(match body {
        OpBody::Lookup { dir, .. }
        | OpBody::DirInode { dir }
        | OpBody::Create { dir, .. }
        | OpBody::AddSubdir { dir, .. }
        | OpBody::Unlink { dir, .. }
        | OpBody::RemoveSubdir { dir, .. }
        | OpBody::Readdir { dir }
        | OpBody::SetSize { dir, .. }
        | OpBody::SetAttrChild { dir, .. }
        | OpBody::SetAttrDir { dir, .. }
        | OpBody::SetAcl { dir, .. }
        | OpBody::RenameLocal { dir, .. }
        | OpBody::RenameSrcPrepare { dir, .. }
        | OpBody::RenameDstPrepare { dir, .. }
        | OpBody::RenameDecide { dir, .. }
        | OpBody::AcquireReadLease { dir, .. }
        | OpBody::AcquireWriteLease { dir, .. }
        | OpBody::ReleaseFileLease { dir, .. }
        | OpBody::FsyncDir { dir } => *dir,
        OpBody::FlushCache { .. } => return None,
    })
}
