//! The near-POSIX [`Vfs`] surface of [`ArkClient`].
//!
//! A thin composition layer: each operation resolves paths via
//! [`super::namei`], routes directory mutations through
//! [`super::dirsvc`], manages handles and file leases via
//! [`super::filetable`], and moves bytes via [`super::datapath`]. Every
//! op runs under [`ArkClient::traced`] so its virtual-time latency
//! lands in the preregistered `op.<name>.latency_ns` histogram.

use super::dirsvc::DirRef;
use super::filetable::OpenFile;
use super::{ArkClient, MAX_LEASE_RETRIES};
use crate::cluster::manager_node;
use crate::config::CommitMode;
use crate::meta::InodeRecord;
use crate::metatable::Metatable;
use crate::rpc::{OpBody, OpResponse};
use arkfs_lease::LeaseRequest;
use arkfs_simkit::Port;
use arkfs_vfs::{
    path as vpath, perm, Acl, Credentials, DirEntry, FileHandle, FileType, FsError, FsResult,
    FsStats, Ino, OpenFlags, SetAttr, Stat, Vfs, AM_READ, AM_WRITE, ROOT_INO,
};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl ArkClient {
    fn open_inner(
        &self,
        ctx: &Credentials,
        path: &str,
        flags: OpenFlags,
        depth: usize,
    ) -> FsResult<FileHandle> {
        if depth > 8 {
            return Err(FsError::InvalidArgument); // ELOOP
        }
        let (parent, name) = self.resolve_parent(ctx, path)?;
        let (ino, rec) = self.lookup_record(ctx, parent, name)?;
        match rec.ftype {
            FileType::Directory => return Err(FsError::IsADirectory),
            FileType::Symlink => {
                let target = rec.symlink_target.clone();
                return self.open_inner(ctx, &target, flags, depth + 1);
            }
            FileType::Regular => {}
        }
        let mut want = 0u8;
        if flags.readable() {
            want |= AM_READ;
        }
        if flags.writable() {
            want |= AM_WRITE;
        }
        perm::check_access(ctx, rec.uid, rec.gid, rec.mode, &rec.acl, want)?;
        let mut size = rec.size;
        if flags.is_trunc() && flags.writable() && size > 0 {
            self.push_size(ctx, parent, name, ino, 0)?;
            self.prt().truncate_data(&self.port, ino, size, 0)?;
            self.state.lock_cache().truncate_file(ino, 0);
            size = 0;
        }
        let cached = self.file_lease_read(parent, ino)?;
        let id = self.state.files.insert(OpenFile {
            ino,
            parent,
            name: name.to_string(),
            flags,
            size,
            cached,
            wrote: false,
            ra_window: 0,
            last_pos: 0,
        });
        Ok(FileHandle(id))
    }

    /// Durability barrier across *every* partition commit lane of `dir`.
    ///
    /// Size pushes route by name to one partition, but earlier metadata
    /// acked on this directory may sit in other partitions' lanes (the
    /// create that predated a split, a sibling handle's push), so fsync
    /// fans the barrier out to all of them. Partitions whose pkey is in
    /// `led` were already committed and drained locally by the caller.
    ///
    /// The cached partition map is the right fan-out set: every ack this
    /// client received was routed with it or with an older map, and a
    /// split/merge drains all old partition streams durable *before*
    /// installing its new map. A partition the current store map no
    /// longer has therefore holds nothing of ours that is not already
    /// durable, so a bounce on a since-merged partition is tolerated.
    fn fsync_dir_barrier(&self, ctx: &Credentials, dir: Ino, led: &HashSet<Ino>) -> FsResult<()> {
        let pmap = self.state.cached_pmap(dir);
        let start = self.port.now();
        let mut done = start;
        for p in 0..pmap.partitions {
            if led.contains(&pmap.pkey(p)) {
                continue; // committed + drained locally by the caller
            }
            let fork = Port::starting_at(start);
            match self.on_dir_port(&fork, ctx, dir, OpBody::FsyncDir { dir, partition: p }) {
                Ok(OpResponse::Ok) => {}
                Ok(OpResponse::Err(e)) => return Err(e),
                Ok(_) => return Err(FsError::Io("unexpected fsync-dir response".into())),
                Err(e @ (FsError::Stale | FsError::TimedOut)) if p > 0 => {
                    let fresh = self.state.refresh_pmap(&fork, dir)?;
                    if p < fresh.partitions {
                        return Err(e); // real partition, real failure
                    }
                    // Merged away: drained durable before the map changed.
                }
                Err(e) => return Err(e),
            }
            done = done.max(fork.now());
        }
        self.port.wait_until(done);
        Ok(())
    }

    /// Merge-scan of a (possibly partitioned) directory.
    ///
    /// Partition 0 is queried first — the partition count its table
    /// serves is authoritative — then the remaining partitions fan out
    /// on ports forked at one instant, so the caller pays the slowest
    /// slice, not the sum. Every slice carries the serving table's
    /// partition count; a mismatch means the map changed mid-scan
    /// (split/merge landed between slices), so the cached map is
    /// refreshed and the whole merge redone.
    fn readdir_merged(&self, ctx: &Credentials, ino: Ino) -> FsResult<Vec<DirEntry>> {
        'scan: for _ in 0..MAX_LEASE_RETRIES {
            let mut merged: Vec<DirEntry>;
            let parts = match self.on_dir(
                ctx,
                ino,
                OpBody::Readdir {
                    dir: ino,
                    partition: 0,
                },
            )? {
                OpResponse::Entries {
                    entries,
                    partitions,
                } => {
                    merged = entries;
                    partitions
                }
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected readdir response".into())),
            };
            let start = self.port.now();
            let mut done = start;
            for p in 1..parts {
                let fork = Port::starting_at(start);
                let body = OpBody::Readdir {
                    dir: ino,
                    partition: p,
                };
                match self.on_dir_port(&fork, ctx, ino, body) {
                    Ok(OpResponse::Entries {
                        entries,
                        partitions,
                    }) if partitions == parts => merged.extend(entries),
                    Ok(OpResponse::Entries { .. })
                    | Err(FsError::Stale)
                    | Err(FsError::TimedOut) => {
                        self.port.wait_until(done.max(fork.now()));
                        let _ = self.state.refresh_pmap(&self.port, ino);
                        continue 'scan;
                    }
                    Ok(OpResponse::Err(e)) => return Err(e),
                    Ok(_) => return Err(FsError::Io("unexpected readdir response".into())),
                    Err(e) => return Err(e),
                }
                done = done.max(fork.now());
            }
            self.port.wait_until(done);
            merged.sort_by(|a, b| a.name.cmp(&b.name));
            return Ok(merged);
        }
        Err(FsError::TimedOut)
    }
}

impl Vfs for ArkClient {
    fn mkdir(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<Stat> {
        self.traced("op.mkdir", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            vpath::validate_name(name)?;
            let ino = self.fresh_ino();
            let rec = InodeRecord::new(
                ino,
                FileType::Directory,
                mode,
                ctx.uid,
                ctx.gid,
                self.port.now(),
            );
            // The child directory's inode object is written eagerly so its
            // first leader can load it (the dentry itself is journaled).
            self.prt().store_inode(&self.port, &rec)?;
            match self.on_dir(
                ctx,
                parent,
                OpBody::AddSubdir {
                    dir: parent,
                    name: name.to_string(),
                    child: ino,
                },
            )? {
                OpResponse::Ok => {
                    if self.config().permission_cache {
                        self.pcache_note(parent, name, Some((ino, FileType::Directory)));
                    }
                    Ok(rec.to_stat())
                }
                OpResponse::Err(e) => {
                    let _ = self.prt().delete_inode(&self.port, ino);
                    Err(e)
                }
                _ => Err(FsError::Io("unexpected mkdir response".into())),
            }
        })
    }

    fn rmdir(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.traced("op.rmdir", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            let (child, ftype) = self.lookup_step(ctx, parent, name)?;
            if ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            if child == ROOT_INO {
                return Err(FsError::InvalidArgument);
            }
            // Become the child's leader to guarantee a stable emptiness
            // check. A partitioned child is first merged back to one
            // partition so a single table sees the whole namespace slice
            // (and so no orphan partition journals outlive the removal).
            let mut checked = false;
            for _ in 0..MAX_LEASE_RETRIES {
                match self.dir_ref(child)? {
                    DirRef::Local(table) => {
                        {
                            let mut t = self.state.lock_table(&table);
                            if t.pcount() <= 1 {
                                if !t.is_empty() {
                                    return Err(FsError::NotEmpty);
                                }
                                t.flush(
                                    self.prt(),
                                    &self.port,
                                    &self.state.lane(child).res,
                                    self.config().spec.local_meta_op,
                                )?;
                                checked = true;
                            }
                        }
                        if checked {
                            break;
                        }
                        self.repartition(child, 1)?;
                    }
                    DirRef::Remote(_) => return Err(FsError::Busy),
                }
            }
            if !checked {
                return Err(FsError::Busy);
            }
            match self.on_dir(
                ctx,
                parent,
                OpBody::RemoveSubdir {
                    dir: parent,
                    name: name.to_string(),
                },
            )? {
                OpResponse::Ok => {}
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected rmdir response".into())),
            }
            // Drop leadership and delete the directory's objects.
            self.state.dirs.forget(child);
            let _ = self.state.cluster.call_lease(
                &self.port,
                manager_node(child, self.config().lease_managers),
                LeaseRequest::Release {
                    client: self.state.id,
                    ino: child,
                },
            );
            self.prt().delete_buckets(&self.port, child)?;
            self.prt().delete_inode(&self.port, child)?;
            self.pcache_forget(child);
            if self.config().permission_cache {
                self.pcache_note(parent, name, None);
            }
            Ok(())
        })
    }

    fn create(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<FileHandle> {
        self.traced("op.create", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            vpath::validate_name(name)?;
            let ino = self.fresh_ino();
            let rec = InodeRecord::new(
                ino,
                FileType::Regular,
                mode,
                ctx.uid,
                ctx.gid,
                self.port.now(),
            );
            match self.on_dir(
                ctx,
                parent,
                OpBody::Create {
                    dir: parent,
                    name: name.to_string(),
                    rec,
                },
            )? {
                OpResponse::Ok => {}
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected create response".into())),
            }
            if self.config().permission_cache {
                self.pcache_note(parent, name, Some((ino, FileType::Regular)));
            }
            let cached = self.file_lease_read(parent, ino)?;
            let id = self.state.files.insert(OpenFile {
                ino,
                parent,
                name: name.to_string(),
                flags: OpenFlags::RDWR,
                size: 0,
                cached,
                wrote: false,
                ra_window: 0,
                last_pos: 0,
            });
            Ok(FileHandle(id))
        })
    }

    fn open(&self, ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle> {
        self.traced("op.open", || self.open_inner(ctx, path, flags, 0))
    }

    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.traced("op.close", || {
            if self.config().commit_mode == CommitMode::Sync {
                self.fsync(ctx, fh)?;
                let h = self.state.files.remove(fh.0).ok_or(FsError::BadHandle)?;
                self.release_file_lease(h.parent, h.ino);
                return Ok(());
            }
            // Async pipeline: the kernel's FLUSH on close is suppressed
            // (FOPEN_NOFLUSH semantics), so close pays no FUSE round
            // trip and no durability wait. Dirty data and the size
            // update still reach the leader — acked, not yet durable;
            // an explicit `fsync`/`sync_all` is the durability barrier.
            let (ino, parent, name, size, wrote) = self
                .state
                .files
                .get(fh.0, |h| (h.ino, h.parent, h.name.clone(), h.size, h.wrote))
                .ok_or(FsError::BadHandle)?;
            self.flush_file_data(ino)?;
            if wrote {
                self.push_size(ctx, parent, &name, ino, size)?;
            }
            self.state.files.remove(fh.0);
            self.release_file_lease_background(parent, ino);
            Ok(())
        })
    }

    fn read(
        &self,
        ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        self.traced("op.read", || {
            let _ = ctx;
            self.read_impl(fh, offset, buf)
        })
    }

    fn write(
        &self,
        ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        self.traced("op.write", || {
            let _ = ctx;
            self.write_impl(fh, offset, data)
        })
    }

    fn fsync(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.traced("op.fsync", || {
            self.fuse_charge(1);
            let (ino, parent, name, size, wrote) = self
                .state
                .files
                .get(fh.0, |h| (h.ino, h.parent, h.name.clone(), h.size, h.wrote))
                .ok_or(FsError::BadHandle)?;
            self.flush_file_data(ino)?;
            if wrote {
                self.push_size(ctx, parent, &name, ino, size)?;
                let _ = self.state.files.update(fh.0, |h| {
                    h.wrote = false;
                });
            }
            if self.config().commit_mode == CommitMode::Async {
                // Durability barrier: the size push (and any earlier
                // metadata on this file) was acked before durability, so
                // seal + flush the parent's running transaction and
                // drain its commit lane before fsync returns — on every
                // partition of the parent, not just the one the name
                // hashes to.
                self.fsync_dir_barrier(ctx, parent, &HashSet::new())?;
            }
            Ok(())
        })
    }

    fn stat(&self, ctx: &Credentials, path: &str) -> FsResult<Stat> {
        self.traced("op.stat", || {
            let (ino, rec) = self.resolve_record(ctx, path)?;
            let mut st = rec.to_stat();
            // Reads-own-writes: unflushed writes are visible to this client.
            if let Some(open_size) = self.state.files.max_open_size(ino) {
                st.size = st.size.max(open_size);
            }
            Ok(st)
        })
    }

    fn readdir(&self, ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        self.traced("op.readdir", || {
            let (ino, ftype) = self.resolve(ctx, path)?;
            if ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            self.readdir_merged(ctx, ino)
        })
    }

    fn unlink(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.traced("op.unlink", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            match self.on_dir(
                ctx,
                parent,
                OpBody::Unlink {
                    dir: parent,
                    name: name.to_string(),
                },
            )? {
                OpResponse::Inode(rec) => {
                    self.state.lock_cache().invalidate_file(rec.ino);
                    self.prt().delete_data(&self.port, rec.ino, rec.size)?;
                    if self.config().permission_cache {
                        self.pcache_note(parent, name, None);
                    }
                    Ok(())
                }
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected unlink response".into())),
            }
        })
    }

    fn rename(&self, ctx: &Credentials, from: &str, to: &str) -> FsResult<()> {
        self.traced("op.rename", || {
            let from_comps = vpath::components(from)?;
            let to_comps = vpath::components(to)?;
            if from_comps == to_comps {
                return Ok(());
            }
            if from_comps.is_empty() || to_comps.is_empty() {
                return Err(FsError::InvalidArgument);
            }
            if vpath::is_prefix_of(&from_comps, &to_comps) {
                return Err(FsError::InvalidArgument); // moving into own subtree
            }
            let (src_dir, src_name) = self.resolve_parent(ctx, from)?;
            let (dst_dir, dst_name) = self.resolve_parent(ctx, to)?;

            if src_dir == dst_dir {
                // Existing directory target must be empty and is removed
                // first (POSIX replace).
                if let Ok((tino, tft)) = self.lookup_step(ctx, src_dir, dst_name) {
                    if tft == FileType::Directory {
                        let (_, sft) = self.lookup_step(ctx, src_dir, src_name)?;
                        if sft != FileType::Directory {
                            return Err(FsError::IsADirectory);
                        }
                        match self.dir_ref(tino)? {
                            DirRef::Local(table) => {
                                if !self.state.lock_table(&table).is_empty() {
                                    return Err(FsError::NotEmpty);
                                }
                            }
                            DirRef::Remote(_) => return Err(FsError::Busy),
                        }
                        self.rmdir(ctx, to)?;
                    }
                }
            }

            // Same directory, both names in one partition: single-journal
            // rename. When the names hash to different partitions of one
            // directory the entry still moves between two journals, so
            // that case falls through to the 2PC below just like a
            // cross-directory move.
            // Drawn up front so every rename consumes exactly one RNG
            // value no matter which path serves it: partition routing must
            // not perturb the ino stream later operations draw from.
            let txid: u128 = self.state.rngs.random_u128();
            let buckets = self.config().dentry_buckets;
            let same_partition = |pmap: &crate::partition::PartitionMap| {
                pmap.partitions <= 1
                    || pmap.partition_of_name(src_name, buckets)
                        == pmap.partition_of_name(dst_name, buckets)
            };
            if src_dir == dst_dir && same_partition(&self.state.cached_pmap(src_dir)) {
                let local = self.on_dir(
                    ctx,
                    src_dir,
                    OpBody::RenameLocal {
                        dir: src_dir,
                        from: src_name.to_string(),
                        to: dst_name.to_string(),
                    },
                );
                match local {
                    Ok(OpResponse::Ok) => {
                        if self.config().permission_cache {
                            self.pcache_note(src_dir, src_name, None);
                        }
                        return Ok(());
                    }
                    Ok(OpResponse::Err(e)) => return Err(e),
                    Ok(_) => return Err(FsError::Io("unexpected rename response".into())),
                    // A stale singleton map can route a cross-partition
                    // pair as RenameLocal; no partition owns both names,
                    // so the request bounces until it times out. Check
                    // against a fresh map and fall through to the 2PC if
                    // that is what happened.
                    Err(FsError::TimedOut)
                        if !same_partition(&*self.state.refresh_pmap(&self.port, src_dir)?) => {}
                    Err(e) => return Err(e),
                }
            }

            // Cross-directory (or cross-partition) rename: two-phase commit
            // across both journals (§III-E, [18]). An existing file target
            // is replaced atomically inside the destination's prepare; a
            // directory target is rejected. Each half's `peer` is the
            // *partition key* of the other half's journal stream, so
            // recovery's presumed-abort scan consults the right stream.
            let src_pmap = self.state.cached_pmap(src_dir);
            let dst_pmap = self.state.cached_pmap(dst_dir);
            let src_peer = src_pmap.pkey(src_pmap.partition_of_name(src_name, buckets));
            let dst_peer = dst_pmap.pkey(dst_pmap.partition_of_name(dst_name, buckets));
            let (ino, ftype, rec) = match self.on_dir(
                ctx,
                src_dir,
                OpBody::RenameSrcPrepare {
                    dir: src_dir,
                    name: src_name.to_string(),
                    txid,
                    peer: dst_peer,
                },
            )? {
                OpResponse::Detached { ino, ftype, rec } => (ino, ftype, rec),
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected rename-src response".into())),
            };
            let dst_result = self.on_dir(
                ctx,
                dst_dir,
                OpBody::RenameDstPrepare {
                    dir: dst_dir,
                    name: dst_name.to_string(),
                    txid,
                    peer: src_peer,
                    ino,
                    ftype,
                    rec: rec.clone(),
                },
            )?;
            match dst_result {
                OpResponse::Ok => {}
                OpResponse::Inode(victim) => {
                    // The destination replaced an existing file; its data
                    // chunks are ours to reclaim.
                    self.state.lock_cache().invalidate_file(victim.ino);
                    self.prt()
                        .delete_data(&self.port, victim.ino, victim.size)?;
                }
                OpResponse::Err(e) => {
                    // Abort: undo the source detach.
                    let _ = self.on_dir(
                        ctx,
                        src_dir,
                        OpBody::RenameDecide {
                            dir: src_dir,
                            name: src_name.to_string(),
                            txid,
                            commit: false,
                            undo: Some((src_name.to_string(), ino, ftype, rec)),
                        },
                    );
                    return Err(e);
                }
                _ => return Err(FsError::Io("unexpected rename-dst response".into())),
            }
            for (dir, name) in [(src_dir, src_name), (dst_dir, dst_name)] {
                match self.on_dir(
                    ctx,
                    dir,
                    OpBody::RenameDecide {
                        dir,
                        name: name.to_string(),
                        txid,
                        commit: true,
                        undo: None,
                    },
                )? {
                    OpResponse::Ok => {}
                    OpResponse::Err(e) => return Err(e),
                    _ => return Err(FsError::Io("unexpected rename-decide response".into())),
                }
            }
            if self.config().permission_cache {
                self.pcache_note(src_dir, src_name, None);
                self.pcache_note(dst_dir, dst_name, Some((ino, ftype)));
            }
            Ok(())
        })
    }

    fn truncate(&self, ctx: &Credentials, path: &str, size: u64) -> FsResult<()> {
        self.traced("op.truncate", || {
            if vpath::components(path)?.is_empty() {
                return Err(FsError::IsADirectory);
            }
            let (parent, name) = self.resolve_parent(ctx, path)?;
            let (ino, rec) = self.lookup_record(ctx, parent, name)?;
            if rec.ftype == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            perm::check_access(ctx, rec.uid, rec.gid, rec.mode, &rec.acl, AM_WRITE)?;
            match self.on_dir(
                ctx,
                parent,
                OpBody::SetSize {
                    dir: parent,
                    name: name.to_string(),
                    ino,
                    size,
                },
            )? {
                OpResponse::Ok => {}
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected truncate response".into())),
            }
            if size < rec.size {
                // Flush surviving dirty data, then drop all cached chunks:
                // the boundary chunk's cached copy is stale after the store
                // trims it.
                self.flush_file_data(ino)?;
                self.state.lock_cache().invalidate_file(ino);
                self.prt().truncate_data(&self.port, ino, rec.size, size)?;
            }
            self.state.files.set_size_for(ino, size);
            Ok(())
        })
    }

    fn setattr(&self, ctx: &Credentials, path: &str, attr: &SetAttr) -> FsResult<Stat> {
        self.traced("op.setattr", || {
            let comps = vpath::components(path)?;
            let resp = if comps.is_empty() {
                self.fuse_charge(1);
                self.on_dir(
                    ctx,
                    ROOT_INO,
                    OpBody::SetAttrDir {
                        dir: ROOT_INO,
                        attr: attr.clone(),
                    },
                )?
            } else {
                let (parent, name) = self.resolve_parent(ctx, path)?;
                let (ino, ftype) = self.lookup_step(ctx, parent, name)?;
                if ftype == FileType::Directory {
                    self.pcache_forget(ino);
                    self.on_dir(
                        ctx,
                        ino,
                        OpBody::SetAttrDir {
                            dir: ino,
                            attr: attr.clone(),
                        },
                    )?
                } else {
                    self.on_dir(
                        ctx,
                        parent,
                        OpBody::SetAttrChild {
                            dir: parent,
                            name: name.to_string(),
                            ino,
                            attr: attr.clone(),
                        },
                    )?
                }
            };
            match resp {
                OpResponse::Inode(rec) => Ok(rec.to_stat()),
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected setattr response".into())),
            }
        })
    }

    fn symlink(&self, ctx: &Credentials, path: &str, target: &str) -> FsResult<Stat> {
        self.traced("op.symlink", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            vpath::validate_name(name)?;
            let ino = self.fresh_ino();
            let mut rec = InodeRecord::new(
                ino,
                FileType::Symlink,
                0o777,
                ctx.uid,
                ctx.gid,
                self.port.now(),
            );
            rec.symlink_target = target.to_string();
            rec.size = target.len() as u64;
            let stat = rec.to_stat();
            match self.on_dir(
                ctx,
                parent,
                OpBody::Create {
                    dir: parent,
                    name: name.to_string(),
                    rec,
                },
            )? {
                OpResponse::Ok => {
                    if self.config().permission_cache {
                        self.pcache_note(parent, name, Some((ino, FileType::Symlink)));
                    }
                    Ok(stat)
                }
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected symlink response".into())),
            }
        })
    }

    fn readlink(&self, ctx: &Credentials, path: &str) -> FsResult<String> {
        self.traced("op.readlink", || {
            let (_, rec) = self.resolve_record(ctx, path)?;
            if rec.ftype != FileType::Symlink {
                return Err(FsError::InvalidArgument);
            }
            Ok(rec.symlink_target)
        })
    }

    fn set_acl(&self, ctx: &Credentials, path: &str, acl: &Acl) -> FsResult<()> {
        self.traced("op.set_acl", || {
            let comps = vpath::components(path)?;
            let resp = if comps.is_empty() {
                self.fuse_charge(1);
                self.on_dir(
                    ctx,
                    ROOT_INO,
                    OpBody::SetAcl {
                        dir: ROOT_INO,
                        name: String::new(),
                        target: ROOT_INO,
                        acl: acl.clone(),
                    },
                )?
            } else {
                let (parent, name) = self.resolve_parent(ctx, path)?;
                let (ino, ftype) = self.lookup_step(ctx, parent, name)?;
                if ftype == FileType::Directory {
                    self.pcache_forget(ino);
                    self.on_dir(
                        ctx,
                        ino,
                        OpBody::SetAcl {
                            dir: ino,
                            name: String::new(),
                            target: ino,
                            acl: acl.clone(),
                        },
                    )?
                } else {
                    self.on_dir(
                        ctx,
                        parent,
                        OpBody::SetAcl {
                            dir: parent,
                            name: name.to_string(),
                            target: ino,
                            acl: acl.clone(),
                        },
                    )?
                }
            };
            match resp {
                OpResponse::Ok => Ok(()),
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected set_acl response".into())),
            }
        })
    }

    fn get_acl(&self, ctx: &Credentials, path: &str) -> FsResult<Acl> {
        self.traced("op.get_acl", || {
            let (_, rec) = self.resolve_record(ctx, path)?;
            Ok(rec.acl)
        })
    }

    fn access(&self, ctx: &Credentials, path: &str, mode: u8) -> FsResult<()> {
        self.traced("op.access", || {
            let (_, rec) = self.resolve_record(ctx, path)?;
            perm::check_access(ctx, rec.uid, rec.gid, rec.mode, &rec.acl, mode)
        })
    }

    fn sync_all(&self, ctx: &Credentials) -> FsResult<()> {
        self.traced("op.sync_all", || {
            // 1. All dirty data chunks, pipelined.
            let dirty = self.state.lock_cache().take_all_dirty();
            if !dirty.is_empty() {
                let items: Vec<(arkfs_objstore::ObjectKey, Bytes)> = dirty
                    .into_iter()
                    .map(|e| {
                        (
                            arkfs_objstore::ObjectKey::data_chunk(e.ino, e.chunk),
                            Bytes::from(e.data),
                        )
                    })
                    .collect();
                for r in self.prt().store().put_many(&self.port, items) {
                    r.map_err(crate::prt::map_os_err)?;
                }
            }
            // 2. Size updates for written handles. In async mode a push
            // to a *remote* leader is acked before durability, so each
            // parent is remembered: any not flushed locally below gets
            // an explicit FsyncDir barrier.
            let pending = self.state.files.take_pending_sizes();
            for (parent, name, ino, size) in pending {
                // Routed through `on_dir`, so the parent lands in
                // `dirty_dirs` and gets its barrier in step 5.
                self.push_size(ctx, parent, &name, ino, size)?;
            }
            // 3. Commit + checkpoint every led directory, overlapped: each
            // directory's flush runs on a port forked at the same instant,
            // so independent directories' commits proceed in parallel and
            // the caller pays the slowest one. Directories mapped to the
            // same commit lane still serialize on that lane's
            // `SharedResource` (§III-E: multiple commit threads), and
            // checkpoints land on background timelines inside `flush`.
            let mut tables: Vec<(Ino, Arc<Mutex<Metatable>>)> = self.state.dirs.led_tables();
            // Deterministic flush order (the map iterates in hash order,
            // which varies between runs and would jitter the virtual-time
            // arrival order on shared resources).
            tables.sort_by_key(|&(ino, _)| ino);
            // Keyed by *partition key*: a led partition of a remote-led
            // directory is flushed here, and the per-partition barrier
            // below skips exactly those lanes.
            let led: HashSet<Ino> = tables.iter().map(|&(ino, _)| ino).collect();
            let start = self.port.now();
            let mut done = start;
            for (ino, table) in tables {
                let fork = Port::starting_at(start);
                let mut t = self.state.lock_table(&table);
                t.flush(
                    self.prt(),
                    &fork,
                    &self.state.lane(ino).res,
                    self.config().spec.local_meta_op,
                )?;
                done = done.max(fork.now());
            }
            // 4. Drain every commit lane: window commits and sealed
            // batches flushed on background timelines (recorded as
            // in-flight on their lane) must land before sync_all
            // returns — this is the global durability barrier.
            for lane in &self.state.lanes {
                done = done.max(lane.drain_until(start));
            }
            self.port.wait_until(done);
            // 5. Async mode: any mutation this client acked against a
            // *remote* partition leader (creates, size pushes, rename
            // halves — `dirty_dirs` collects their directories at the
            // `on_dir` layer) lives in that leader's running transaction,
            // not ours; a FsyncDir barrier per remote-led partition of
            // each dirty directory makes those journals durable too
            // (partitions flushed locally in step 3 are skipped by pkey).
            if self.config().commit_mode == CommitMode::Async {
                let mut dirty: Vec<Ino> = self.state.dirty_dirs.lock().drain().collect();
                dirty.sort_unstable();
                for dir in dirty {
                    match self.fsync_dir_barrier(ctx, dir, &led) {
                        // The directory may have been removed since it
                        // was dirtied; rmdir already flushed it.
                        Ok(()) | Err(FsError::NotFound) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            self.state.flush_epoch.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    }

    fn statfs(&self, _ctx: &Credentials) -> FsResult<FsStats> {
        self.traced("op.statfs", || {
            // Inode count via a flat LIST of `i` objects. The LIST is charged
            // as a single listing op in the cost model, but on S3-like
            // profiles it is still the most expensive metadata call we issue,
            // so the count is memoized per flush epoch: the namespace only
            // changes durably at commit/checkpoint time, and `sync_all` bumps
            // `flush_epoch`, so repeated statfs calls between flushes reuse
            // the cached count without re-walking the store.
            let epoch = self.state.flush_epoch.load(Ordering::Relaxed);
            let mut cache = self.state.statfs_cache.lock();
            let inodes = match *cache {
                Some((e, n)) if e == epoch => n,
                _ => {
                    let n = self
                        .prt()
                        .store()
                        .list(&self.port, Some(arkfs_objstore::KeyKind::Inode), None)
                        .map_err(crate::prt::map_os_err)?
                        .len() as u64;
                    *cache = Some((epoch, n));
                    n
                }
            };
            let (store_objects, store_bytes) = self.prt().store().usage();
            Ok(FsStats {
                inodes,
                store_objects,
                store_bytes,
            })
        })
    }
}
