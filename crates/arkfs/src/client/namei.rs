//! Path resolution, permission checks, and the permission cache.
//!
//! Paths resolve component by component through [`ArkClient::lookup_step`];
//! every step checks exec permission on the containing directory. For
//! *remote* directories, permission-cache mode (§III-C) caches the
//! directory's inode (permissions + stat) and recent lookup results for
//! one lease period in the [`Pcache`], trading a little consistency for
//! local-speed resolution.
//!
//! The pcache is lock-striped by directory ino (rank *Stripe*, see
//! [`super::lockorder`]); a stripe is never held across an RPC or a
//! [`super::dirsvc`] call — cache fills release the stripe first.

use super::dirsvc::DirRef;
use super::lockorder::{self, Rank, RankGuard};
use super::ArkClient;
use crate::meta::InodeRecord;
use crate::rpc::{OpBody, OpResponse};
use arkfs_simkit::Nanos;
use arkfs_vfs::{
    path as vpath, perm, Credentials, FileType, FsError, FsResult, Ino, AM_EXEC, ROOT_INO,
};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};

/// A cached view of a remote directory used in permission-cache mode
/// (§III-C): its inode (permissions + stat) and recent lookup results,
/// valid for one lease period.
#[derive(Debug, Clone)]
pub(crate) struct PermCacheEntry {
    pub(crate) dir: InodeRecord,
    pub(crate) lookups: HashMap<String, Option<(Ino, FileType)>>,
    pub(crate) expires_at: Nanos,
}

#[derive(Debug, Default)]
struct PcacheStripe {
    entries: HashMap<Ino, PermCacheEntry>,
    locks: u64,
}

/// A locked pcache stripe; derefs to its entry map.
pub(crate) struct PcacheGuard<'a> {
    guard: MutexGuard<'a, PcacheStripe>,
    _rank: RankGuard,
}

impl Deref for PcacheGuard<'_> {
    type Target = HashMap<Ino, PermCacheEntry>;
    fn deref(&self) -> &Self::Target {
        &self.guard.entries
    }
}

impl DerefMut for PcacheGuard<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard.entries
    }
}

/// The permission cache, lock-striped by directory ino.
#[derive(Debug)]
pub(crate) struct Pcache {
    stripes: Vec<Mutex<PcacheStripe>>,
    node: u32,
    pub(crate) contention: super::Contention,
}

impl Pcache {
    pub(crate) fn new(stripes: usize, node: u32) -> Self {
        Pcache {
            stripes: (0..stripes.max(1)).map(|_| Mutex::default()).collect(),
            node,
            contention: super::Contention::default(),
        }
    }

    /// Lock stripe `i` (rank: Stripe).
    fn stripe_at(&self, i: usize) -> PcacheGuard<'_> {
        let rank = lockorder::acquire(self.node, Rank::Stripe);
        let mut guard = self.contention.lock(&self.stripes[i]);
        guard.locks += 1;
        PcacheGuard { guard, _rank: rank }
    }

    /// Lock the stripe owning `dir` (rank: Stripe).
    pub(crate) fn stripe(&self, dir: Ino) -> PcacheGuard<'_> {
        self.stripe_at((dir % self.stripes.len() as u128) as usize)
    }

    /// Drop the cached view of one directory.
    pub(crate) fn forget(&self, dir: Ino) {
        self.stripe(dir).remove(&dir);
    }

    /// Drop everything (crash).
    pub(crate) fn clear(&self) {
        for i in 0..self.stripes.len() {
            self.stripe_at(i).clear();
        }
    }

    /// Total stripe-lock acquisitions so far.
    pub(crate) fn lock_count(&self) -> u64 {
        (0..self.stripes.len())
            .map(|i| {
                let s = self.stripe_at(i);
                // Don't count this read itself.
                s.guard.locks - 1
            })
            .sum()
    }
}

impl ArkClient {
    /// One path-resolution step: find `name` in `dir`, checking exec
    /// permission on `dir` for `ctx`.
    pub(crate) fn lookup_step(
        &self,
        ctx: &Credentials,
        dir: Ino,
        name: &str,
    ) -> FsResult<(Ino, FileType)> {
        match self.dir_ref_name(dir, name)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let t = self.state.lock_table(&table);
                perm::check_access(ctx, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, AM_EXEC)?;
                let entry = t.lookup(name).ok_or(FsError::NotFound)?;
                Ok((entry.ino, entry.ftype))
            }
            DirRef::Remote(leader) => {
                if self.config().permission_cache {
                    if let Some(hit) = self.pcache_lookup(ctx, dir, name)? {
                        return hit;
                    }
                }
                let resp = self.remote_call(
                    ctx,
                    dir,
                    leader,
                    OpBody::Lookup {
                        dir,
                        name: name.to_string(),
                    },
                )?;
                match resp {
                    OpResponse::Entry { ino, ftype, .. } => {
                        if self.config().permission_cache {
                            self.pcache_note(dir, name, Some((ino, ftype)));
                        }
                        Ok((ino, ftype))
                    }
                    OpResponse::Err(FsError::NotFound) => {
                        if self.config().permission_cache {
                            self.pcache_note(dir, name, None);
                        }
                        Err(FsError::NotFound)
                    }
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected lookup response".into())),
                }
            }
        }
    }

    /// Try the permission cache: returns `Some(result)` on a conclusive
    /// hit, `None` when the caller must RPC. Also checks exec permission
    /// locally from the cached directory inode.
    fn pcache_lookup(
        &self,
        ctx: &Credentials,
        dir: Ino,
        name: &str,
    ) -> FsResult<Option<FsResult<(Ino, FileType)>>> {
        let now = self.port.now();
        let pc = self.state.pcache.stripe(dir);
        let entry = match pc.get(&dir) {
            Some(e) if e.expires_at > now => e,
            _ => {
                drop(pc);
                self.pcache_fill(ctx, dir)?;
                return Ok(None);
            }
        };
        perm::check_access(
            ctx,
            entry.dir.uid,
            entry.dir.gid,
            entry.dir.mode,
            &entry.dir.acl,
            AM_EXEC,
        )?;
        self.port.advance(self.config().spec.local_meta_op);
        Ok(entry.lookups.get(name).map(|cached| match cached {
            Some(hit) => Ok(*hit),
            None => Err(FsError::NotFound),
        }))
    }

    /// Fetch and cache a remote directory's inode (permission info).
    fn pcache_fill(&self, _ctx: &Credentials, dir: Ino) -> FsResult<()> {
        let rec = self.dir_inode(dir)?;
        let expires_at = self.port.now() + self.config().lease_period;
        self.state.pcache.stripe(dir).insert(
            dir,
            PermCacheEntry {
                dir: rec,
                lookups: HashMap::new(),
                expires_at,
            },
        );
        Ok(())
    }

    pub(crate) fn pcache_note(&self, dir: Ino, name: &str, result: Option<(Ino, FileType)>) {
        if let Some(entry) = self.state.pcache.stripe(dir).get_mut(&dir) {
            entry.lookups.insert(name.to_string(), result);
        }
    }

    pub(crate) fn pcache_forget(&self, dir: Ino) {
        self.state.pcache.forget(dir);
    }

    /// Resolve all but the final component of `path`, checking exec
    /// permission along the way. Returns (parent dir ino, final name).
    pub(crate) fn resolve_parent<'p>(
        &self,
        ctx: &Credentials,
        path: &'p str,
    ) -> FsResult<(Ino, &'p str)> {
        let (parents, name) = vpath::split_parent(path)?;
        // FUSE sends one LOOKUP per component plus the final request.
        self.fuse_charge(parents.len() + 2);
        let mut dir = ROOT_INO;
        for comp in parents {
            let (ino, ftype) = self.lookup_step(ctx, dir, comp)?;
            if ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            dir = ino;
        }
        Ok((dir, name))
    }

    /// Resolve a full path to (ino, ftype), where the final component may
    /// be anything. `/` resolves to the root directory.
    pub(crate) fn resolve(&self, ctx: &Credentials, path: &str) -> FsResult<(Ino, FileType)> {
        let comps = vpath::components(path)?;
        if comps.is_empty() {
            self.fuse_charge(1);
            return Ok((ROOT_INO, FileType::Directory));
        }
        let (dir, name) = self.resolve_parent(ctx, path)?;
        self.lookup_step(ctx, dir, name)
    }

    /// The final inode record of a path (for stat/open/ACL reads).
    pub(crate) fn resolve_record(
        &self,
        ctx: &Credentials,
        path: &str,
    ) -> FsResult<(Ino, InodeRecord)> {
        let comps = vpath::components(path)?;
        if comps.is_empty() {
            self.fuse_charge(1);
            let rec = self.dir_inode(ROOT_INO)?;
            return Ok((ROOT_INO, rec));
        }
        let (dir, name) = self.resolve_parent(ctx, path)?;
        match self.dir_ref_name(dir, name)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let t = self.state.lock_table(&table);
                perm::check_access(ctx, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, AM_EXEC)?;
                let entry = t.lookup(name).ok_or(FsError::NotFound)?;
                if entry.ftype == FileType::Directory {
                    let ino = entry.ino;
                    drop(t);
                    let rec = self.dir_inode(ino)?;
                    Ok((ino, rec))
                } else {
                    let rec = t
                        .child_inode(entry.ino)
                        .cloned()
                        .ok_or_else(|| FsError::Io("dangling dentry".into()))?;
                    Ok((entry.ino, rec))
                }
            }
            DirRef::Remote(leader) => {
                let resp = self.remote_call(
                    ctx,
                    dir,
                    leader,
                    OpBody::Lookup {
                        dir,
                        name: name.to_string(),
                    },
                )?;
                match resp {
                    OpResponse::Entry { ino, ftype, rec } => {
                        if self.config().permission_cache {
                            self.pcache_note(dir, name, Some((ino, ftype)));
                        }
                        match rec {
                            Some(rec) => Ok((ino, rec)),
                            None => {
                                // Directory: ask its own leader.
                                let rec = self.dir_inode(ino)?;
                                Ok((ino, rec))
                            }
                        }
                    }
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected lookup response".into())),
                }
            }
        }
    }

    /// Resolve (parent, name) → the child's inode record, through the
    /// appropriate leader.
    pub(crate) fn lookup_record(
        &self,
        ctx: &Credentials,
        dir: Ino,
        name: &str,
    ) -> FsResult<(Ino, InodeRecord)> {
        match self.dir_ref_name(dir, name)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let t = self.state.lock_table(&table);
                perm::check_access(ctx, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, AM_EXEC)?;
                let entry = t.lookup(name).ok_or(FsError::NotFound)?;
                if entry.ftype == FileType::Directory {
                    let ino = entry.ino;
                    drop(t);
                    Ok((ino, self.dir_inode(ino)?))
                } else {
                    let rec = t
                        .child_inode(entry.ino)
                        .cloned()
                        .ok_or_else(|| FsError::Io("dangling dentry".into()))?;
                    Ok((entry.ino, rec))
                }
            }
            DirRef::Remote(leader) => {
                let resp = self.remote_call(
                    ctx,
                    dir,
                    leader,
                    OpBody::Lookup {
                        dir,
                        name: name.to_string(),
                    },
                )?;
                match resp {
                    OpResponse::Entry {
                        ino,
                        rec: Some(rec),
                        ..
                    } => Ok((ino, rec)),
                    OpResponse::Entry { ino, rec: None, .. } => Ok((ino, self.dir_inode(ino)?)),
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected lookup response".into())),
                }
            }
        }
    }
}
