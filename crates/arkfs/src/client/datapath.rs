//! Data-cache interaction: read-ahead policy, write-back, and the
//! cached read/write paths (§III-D).
//!
//! All data I/O funnels through here: reads fill the [`DataCache`]
//! (including the asynchronous read-ahead window) with pipelined
//! multi-GETs, writes land dirty in the cache (or go direct after a
//! lease conflict) and dirty evictions flush as batched multi-PUTs.
//!
//! The data cache is a rank-*Leaf* lock (see [`super::lockorder`]):
//! every acquisition here is scoped to one cache pass and released
//! before any store round-trip is awaited.
//!
//! [`DataCache`]: crate::cache::DataCache

use super::ArkClient;
use arkfs_objstore::ObjectKey;
use arkfs_telemetry::PID_CLIENT;
use arkfs_vfs::{FileHandle, FsError, FsResult, Ino};
use bytes::Bytes;
use std::collections::HashMap;

impl ArkClient {
    /// Write back this client's dirty chunks of one file.
    pub(crate) fn flush_file_data(&self, file: Ino) -> FsResult<()> {
        let dirty = self.state.lock_cache().take_dirty(file);
        if dirty.is_empty() {
            return Ok(());
        }
        let items: Vec<(ObjectKey, Bytes)> = dirty
            .into_iter()
            .map(|(chunk, data)| (ObjectKey::data_chunk(file, chunk), Bytes::from(data)))
            .collect();
        for r in self.prt().store().put_many(&self.port, items) {
            r.map_err(crate::prt::map_os_err)?;
        }
        Ok(())
    }

    /// Write back evicted dirty chunks returned by the cache.
    pub(crate) fn write_back(&self, evicted: Vec<crate::cache::Evicted>) -> FsResult<()> {
        if evicted.is_empty() {
            return Ok(());
        }
        let items: Vec<(ObjectKey, Bytes)> = evicted
            .into_iter()
            .map(|e| (ObjectKey::data_chunk(e.ino, e.chunk), Bytes::from(e.data)))
            .collect();
        for r in self.prt().store().put_many(&self.port, items) {
            r.map_err(crate::prt::map_os_err)?;
        }
        Ok(())
    }

    /// Fetch the chunks needed for a cached read, including the
    /// read-ahead window, in one pipelined multi-GET.
    fn fill_cache_for_read(
        &self,
        ino: Ino,
        offset: u64,
        want: usize,
        ra_window: u64,
        size: u64,
    ) -> FsResult<()> {
        let chunk_size = self.config().chunk_size;
        let first = offset / chunk_size;
        let read_end = (offset + want as u64).min(size);
        let ra_end = read_end.saturating_add(ra_window).min(size);
        let last = ra_end.div_ceil(chunk_size).max(first + 1);
        let missing: Vec<u64> = {
            let cache = self.state.lock_cache();
            (first..last).filter(|&c| !cache.contains(ino, c)).collect()
        };
        if missing.is_empty() {
            return Ok(());
        }
        let miss_start = self.port.now();
        // Chunks the request itself touches are fetched synchronously;
        // everything further out is the read-ahead window, fetched
        // *asynchronously* ("the file data belonging to the window is
        // asynchronously read in advance", §III-D): it still loads the
        // store, but the application only waits if it touches a chunk
        // before its completion.
        let last_needed = (offset + want as u64 - 1) / chunk_size;
        let keys: Vec<ObjectKey> = missing
            .iter()
            .map(|&c| ObjectKey::data_chunk(ino, c))
            .collect();
        let depart = self.port.now() + self.config().spec.net_half_rtt;
        let results = self.prt().store().get_each(depart, &keys);
        let mut evicted = Vec::new();
        let mut needed_done = self.port.now();
        {
            // Insert in reverse so the chunk about to be read carries the
            // freshest LRU tick and is not displaced by its own
            // read-ahead companions.
            let mut cache = self.state.lock_cache();
            for (&chunk, result) in missing.iter().zip(results).rev() {
                let chunk_start = chunk * chunk_size;
                let logical_len = (size - chunk_start).min(chunk_size) as usize;
                let (data, ready_at) = match result {
                    Ok((bytes, completion)) => {
                        let mut v = bytes.to_vec();
                        if v.len() < logical_len {
                            v.resize(logical_len, 0); // sparse tail
                        }
                        (v, completion)
                    }
                    Err(arkfs_objstore::OsError::NotFound) => (vec![0u8; logical_len], depart),
                    Err(e) => return Err(crate::prt::map_os_err(e)),
                };
                if chunk <= last_needed {
                    needed_done = needed_done.max(ready_at);
                    evicted.extend(cache.insert_clean(ino, chunk, data));
                } else {
                    evicted.extend(cache.insert_prefetched(ino, chunk, data, ready_at));
                }
            }
        }
        self.port.wait_until(needed_done);
        let tracer = &self.state.telemetry.tracer;
        if tracer.enabled() {
            tracer.record(
                PID_CLIENT,
                self.state.id.0,
                "cache.miss",
                "cache",
                miss_start,
                self.port.now(),
            );
        }
        self.write_back(evicted)
    }

    /// The body of [`Vfs::read`]: direct mode or cache-with-read-ahead.
    ///
    /// [`Vfs::read`]: arkfs_vfs::Vfs::read
    pub(crate) fn read_impl(&self, fh: FileHandle, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.fuse_charge(1);
        let (ino, _parent, flags, size, cached) =
            self.state.files.view(fh.0).ok_or(FsError::BadHandle)?;
        if !flags.readable() {
            return Err(FsError::BadAccessMode);
        }
        if buf.is_empty() || offset >= size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        if !cached {
            let n = self
                .prt()
                .read_data(&self.port, ino, offset, &mut buf[..want], size)?;
            let _ = self.state.files.update(fh.0, |h| {
                h.last_pos = offset + n as u64;
            });
            return Ok(n);
        }

        // Read-ahead window update (§III-D): double on sequential access,
        // jump to max when the read starts at offset 0.
        let config = self.config();
        let ra_window = self
            .state
            .files
            .update(fh.0, |h| {
                if offset == 0 && config.readahead_full_at_zero {
                    h.ra_window = config.max_readahead;
                } else if offset == h.last_pos && offset != 0 {
                    h.ra_window =
                        (h.ra_window.max(config.chunk_size) * 2).min(config.max_readahead);
                } else if offset != h.last_pos {
                    h.ra_window = 0;
                }
                h.ra_window
            })
            .ok_or(FsError::BadHandle)?;
        self.fill_cache_for_read(ino, offset, want, ra_window, size)?;

        // Copy out of the cache; a chunk evicted between fill and copy is
        // re-read straight from the store.
        let chunk_size = config.chunk_size;
        let mut filled = 0usize;
        while filled < want {
            let pos = offset + filled as u64;
            let chunk = pos / chunk_size;
            let within = (pos % chunk_size) as usize;
            let n = ((chunk_size as usize) - within).min(want - filled);
            let hit = {
                let mut cache = self.state.lock_cache();
                match cache.get_ready(ino, chunk) {
                    Some((data, ready_at)) => {
                        let out = &mut buf[filled..filled + n];
                        let avail = data.len().saturating_sub(within);
                        let take = avail.min(n);
                        out[..take].copy_from_slice(&data[within..within + take]);
                        out[take..].fill(0);
                        Some(ready_at)
                    }
                    None => None,
                }
            };
            let hit = match hit {
                Some(ready_at) => {
                    // Touched a chunk whose asynchronous prefetch has not
                    // completed yet: wait for it.
                    self.port.wait_until(ready_at);
                    true
                }
                None => false,
            };
            if !hit {
                self.prt()
                    .read_data(&self.port, ino, pos, &mut buf[filled..filled + n], size)?;
            }
            filled += n;
        }
        self.port.advance(config.spec.local_meta_op);
        let _ = self.state.files.update(fh.0, |h| {
            h.last_pos = offset + filled as u64;
        });
        Ok(filled)
    }

    /// The body of [`Vfs::write`]: write-back caching with lease upgrade
    /// on first write, or direct PUTs after a conflict.
    ///
    /// [`Vfs::write`]: arkfs_vfs::Vfs::write
    pub(crate) fn write_impl(&self, fh: FileHandle, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.fuse_charge(1);
        let (ino, parent, flags, size, _) =
            self.state.files.view(fh.0).ok_or(FsError::BadHandle)?;
        if !flags.writable() {
            return Err(FsError::BadAccessMode);
        }
        if data.is_empty() {
            return Ok(0);
        }
        let offset = if flags.is_append() { size } else { offset };

        // First write upgrades the read lease (§III-D).
        let (cached, first_write) = self
            .state
            .files
            .get(fh.0, |h| (h.cached, !h.wrote))
            .ok_or(FsError::BadHandle)?;
        let cached = if first_write {
            let granted = self.file_lease_write(parent, ino)?;
            self.state
                .files
                .update(fh.0, |h| {
                    h.cached = h.cached && granted;
                    h.wrote = true;
                    h.cached
                })
                .ok_or(FsError::BadHandle)?
        } else {
            cached
        };

        if cached {
            let chunk_size = self.config().chunk_size;
            // Split the write into per-chunk pieces up front.
            let mut pieces: Vec<(u64, usize, &[u8])> = Vec::new();
            let mut written = 0usize;
            while written < data.len() {
                let pos = offset + written as u64;
                let chunk = pos / chunk_size;
                let within = (pos % chunk_size) as usize;
                let n = (chunk_size as usize - within).min(data.len() - written);
                pieces.push((chunk, within, &data[written..written + n]));
                written += n;
            }
            // Partial overwrites of store-resident chunks need the old
            // bytes in cache first (read-modify in cache); fetch every
            // missing one in a single pipelined multi-GET.
            let need_fill: Vec<u64> = {
                let cache = self.state.lock_cache();
                pieces
                    .iter()
                    .filter(|&&(chunk, within, piece)| {
                        let covers_whole = within == 0 && piece.len() == chunk_size as usize;
                        !covers_whole && chunk * chunk_size < size && !cache.contains(ino, chunk)
                    })
                    .map(|&(chunk, ..)| chunk)
                    .collect()
            };
            let mut fills = HashMap::new();
            if !need_fill.is_empty() {
                let keys: Vec<ObjectKey> = need_fill
                    .iter()
                    .map(|&c| ObjectKey::data_chunk(ino, c))
                    .collect();
                let results = self.prt().store().get_many(&self.port, &keys);
                for (&chunk, result) in need_fill.iter().zip(results) {
                    match result {
                        Ok(bytes) => {
                            fills.insert(chunk, bytes.to_vec());
                        }
                        Err(arkfs_objstore::OsError::NotFound) => {}
                        Err(e) => return Err(crate::prt::map_os_err(e)),
                    }
                }
            }
            // One cache pass for the whole span; dirty evictions from the
            // entire call flush as a single write-back batch.
            let evicted = self.state.lock_cache().write_many(ino, fills, &pieces);
            self.write_back(evicted)?;
            self.port.advance(self.config().spec.local_meta_op);
        } else {
            self.prt().write_data(&self.port, ino, offset, data)?;
        }
        let _ = self.state.files.update(fh.0, |h| {
            h.size = h.size.max(offset + data.len() as u64);
        });
        Ok(data.len())
    }
}
