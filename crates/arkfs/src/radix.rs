//! A radix tree over `u64` keys, used to index cached data objects.
//!
//! "Internally, the radix tree is used to index cached data objects. Due
//! to the large cache entry size, it is very likely to have a shallow
//! depth allowing for faster lookups." (§III-D)
//!
//! Fanout is 16 (4 bits per level); the tree grows in height only as far
//! as the largest inserted key requires, so a file's low chunk indexes
//! stay one or two hops from the root.

const FANOUT: usize = 16;
const BITS: u32 = 4;

#[derive(Debug)]
enum Slot<V> {
    Inner(Box<Node<V>>),
    Leaf(V),
}

#[derive(Debug)]
struct Node<V> {
    slots: [Option<Slot<V>>; FANOUT],
}

impl<V> Node<V> {
    fn new() -> Box<Self> {
        Box::new(Node {
            slots: Default::default(),
        })
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

/// A sparse map from `u64` to `V` with shallow-radix lookups.
#[derive(Debug)]
pub struct RadixTree<V> {
    root: Box<Node<V>>,
    /// Number of 4-bit digits currently representable.
    height: u32,
    len: usize,
}

impl<V> Default for RadixTree<V> {
    fn default() -> Self {
        RadixTree {
            root: Node::new(),
            height: 1,
            len: 0,
        }
    }
}

impl<V> RadixTree<V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Keys representable at the current height.
    fn capacity(&self) -> u128 {
        1u128 << (BITS * self.height)
    }

    fn digit(key: u64, level: u32) -> usize {
        ((key >> (BITS * (level - 1))) & (FANOUT as u64 - 1)) as usize
    }

    /// Grow the tree until `key` fits.
    fn grow_for(&mut self, key: u64) {
        while (key as u128) >= self.capacity() {
            let old = std::mem::replace(&mut self.root, Node::new());
            self.root.slots[0] = Some(Slot::Inner(old));
            self.height += 1;
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.grow_for(key);
        let mut node = &mut *self.root;
        let mut level = self.height;
        while level > 1 {
            let d = Self::digit(key, level);
            let slot = &mut node.slots[d];
            match slot {
                Some(Slot::Inner(_)) => {}
                Some(Slot::Leaf(_)) => unreachable!("leaf above level 1"),
                None => *slot = Some(Slot::Inner(Node::new())),
            }
            node = match slot {
                Some(Slot::Inner(n)) => n,
                _ => unreachable!(),
            };
            level -= 1;
        }
        let d = Self::digit(key, 1);
        let prev = node.slots[d].replace(Slot::Leaf(value));
        match prev {
            Some(Slot::Leaf(v)) => Some(v),
            Some(Slot::Inner(_)) => unreachable!("inner node at leaf level"),
            None => {
                self.len += 1;
                None
            }
        }
    }

    pub fn get(&self, key: u64) -> Option<&V> {
        if (key as u128) >= self.capacity() {
            return None;
        }
        let mut node = &*self.root;
        let mut level = self.height;
        while level > 1 {
            match &node.slots[Self::digit(key, level)] {
                Some(Slot::Inner(n)) => node = n,
                _ => return None,
            }
            level -= 1;
        }
        match &node.slots[Self::digit(key, 1)] {
            Some(Slot::Leaf(v)) => Some(v),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if (key as u128) >= self.capacity() {
            return None;
        }
        let mut node = &mut *self.root;
        let mut level = self.height;
        while level > 1 {
            match &mut node.slots[Self::digit(key, level)] {
                Some(Slot::Inner(n)) => node = n,
                _ => return None,
            }
            level -= 1;
        }
        match &mut node.slots[Self::digit(key, 1)] {
            Some(Slot::Leaf(v)) => Some(v),
            _ => None,
        }
    }

    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, pruning any inner nodes it leaves empty.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if (key as u128) >= self.capacity() {
            return None;
        }
        let height = self.height;
        let removed = Self::remove_rec(&mut self.root, key, height);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: u64, level: u32) -> Option<V> {
        let d = Self::digit(key, level);
        if level == 1 {
            return match node.slots[d].take() {
                Some(Slot::Leaf(v)) => Some(v),
                other => {
                    node.slots[d] = other;
                    None
                }
            };
        }
        let removed = match &mut node.slots[d] {
            Some(Slot::Inner(child)) => Self::remove_rec(child, key, level - 1),
            _ => return None,
        };
        if removed.is_some() {
            if let Some(Slot::Inner(child)) = &node.slots[d] {
                if child.is_empty() {
                    node.slots[d] = None;
                }
            }
        }
        removed
    }

    /// In-order iteration over `(key, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect(&self.root, 0, &mut out);
        out.into_iter()
    }

    fn collect<'a>(node: &'a Node<V>, prefix: u64, out: &mut Vec<(u64, &'a V)>) {
        for (d, slot) in node.slots.iter().enumerate() {
            let key = (prefix << BITS) | d as u64;
            match slot {
                Some(Slot::Inner(n)) => Self::collect(n, key, out),
                Some(Slot::Leaf(v)) => out.push((key, v)),
                None => {}
            }
        }
    }

    /// Remove every entry with `key >= from` (truncate support). Returns
    /// the removed values.
    pub fn split_off(&mut self, from: u64) -> Vec<(u64, V)> {
        let keys: Vec<u64> = self.iter().map(|(k, _)| k).filter(|&k| k >= from).collect();
        keys.into_iter()
            .map(|k| (k, self.remove(k).expect("key listed by iter must exist")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove() {
        let mut t = RadixTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(0, "a"), None);
        assert_eq!(t.insert(15, "b"), None);
        assert_eq!(t.insert(16, "c"), None); // forces growth
        assert_eq!(t.insert(1_000_000, "d"), None);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0), Some(&"a"));
        assert_eq!(t.get(15), Some(&"b"));
        assert_eq!(t.get(16), Some(&"c"));
        assert_eq!(t.get(1_000_000), Some(&"d"));
        assert_eq!(t.get(17), None);
        assert_eq!(t.remove(16), Some("c"));
        assert_eq!(t.remove(16), None);
        assert_eq!(t.len(), 3);
        assert!(t.contains(0));
        assert!(!t.contains(16));
    }

    #[test]
    fn insert_replaces() {
        let mut t = RadixTree::new();
        assert_eq!(t.insert(7, 1), None);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some(&2));
        *t.get_mut(7).unwrap() = 9;
        assert_eq!(t.get(7), Some(&9));
        assert_eq!(t.get_mut(8), None);
    }

    #[test]
    fn huge_keys_work() {
        let mut t = RadixTree::new();
        t.insert(u64::MAX, "max");
        t.insert(0, "zero");
        assert_eq!(t.get(u64::MAX), Some(&"max"));
        assert_eq!(t.get(0), Some(&"zero"));
        assert_eq!(t.remove(u64::MAX), Some("max"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn out_of_capacity_lookups_are_none() {
        let mut t: RadixTree<u32> = RadixTree::new();
        t.insert(3, 3);
        // Height 1 covers 0..16; larger keys must not panic.
        assert_eq!(t.get(1 << 40), None);
        assert_eq!(t.remove(1 << 40), None);
    }

    #[test]
    fn iter_is_ordered() {
        let mut t = RadixTree::new();
        for k in [300u64, 1, 40, 2, 1000] {
            t.insert(k, k * 10);
        }
        let got: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(got, vec![1, 2, 40, 300, 1000]);
        let vals: Vec<u64> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![10, 20, 400, 3000, 10000]);
    }

    #[test]
    fn split_off_truncates() {
        let mut t = RadixTree::new();
        for k in 0..20u64 {
            t.insert(k, k);
        }
        let removed = t.split_off(10);
        assert_eq!(removed.len(), 10);
        assert!(removed.iter().all(|(k, _)| *k >= 10));
        assert_eq!(t.len(), 10);
        assert!(t.contains(9));
        assert!(!t.contains(10));
    }

    proptest! {
        #[test]
        fn behaves_like_a_hashmap(ops in prop::collection::vec(
            (0u64..10_000, 0u8..3, any::<u32>()), 1..300)) {
            let mut tree = RadixTree::new();
            let mut model: HashMap<u64, u32> = HashMap::new();
            for (key, op, val) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(tree.insert(key, val), model.insert(key, val));
                    }
                    1 => {
                        prop_assert_eq!(tree.remove(key), model.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(tree.get(key), model.get(&key));
                    }
                }
                prop_assert_eq!(tree.len(), model.len());
            }
            // Full scan agrees with the model, in sorted order.
            let mut expect: Vec<(u64, u32)> = model.into_iter().collect();
            expect.sort();
            let got: Vec<(u64, u32)> = tree.iter().map(|(k, v)| (k, *v)).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
