//! ArkFS configuration knobs.

use arkfs_simkit::{ClusterSpec, Nanos, MSEC, SEC};

/// How metadata mutations reach the journal object stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// Commits run on the mutating operation's own timeline wherever
    /// durability is implied (`fsync` semantics on size pushes, every
    /// forced commit): the pre-pipeline behavior, kept as the ablation
    /// baseline.
    Sync,
    /// Ack as soon as the mutation is sealed into an in-flight journal
    /// append; per-lane commit drivers flush sealed batches on
    /// background timelines. `fsync`/`sync_all` become durability
    /// barriers that drain the caller's lanes.
    Async,
}

/// Tunable parameters of an ArkFS deployment. Defaults follow §III and
/// §IV of the paper.
#[derive(Debug, Clone)]
pub struct ArkConfig {
    /// Directory lease period (paper: 5 s).
    pub lease_period: Nanos,
    /// Grace after a dirty leader change before takeover (paper: at least
    /// one lease period, §III-E).
    pub lease_grace: Nanos,
    /// Extend the lease when an operation finds less than this much
    /// validity left.
    pub lease_renew_margin: Nanos,
    /// Data cache entry size == data object (chunk) size. Paper default:
    /// 2 MB cache entries.
    pub chunk_size: u64,
    /// Maximum number of cache entries per client.
    pub cache_entries: usize,
    /// Maximum read-ahead window (paper default: 8 MB, as in CephFS;
    /// 400 MB for the goofys comparison).
    pub max_readahead: u64,
    /// Start the window at maximum when a read begins at offset 0
    /// (§III-D optimization).
    pub readahead_full_at_zero: bool,
    /// Compound-transaction buffering window (paper: 1 s).
    pub journal_window: Nanos,
    /// Seal the running transaction after this many entries even inside
    /// the window (bounds journal object size).
    pub journal_max_entries: usize,
    /// Number of commit/checkpoint lanes; per-directory journals map to
    /// lanes by directory inode (§III-E: "statically mapped ... depending
    /// on the directory inode numbers").
    pub journal_lanes: usize,
    /// Sync vs async commit pipeline (see [`CommitMode`]).
    pub commit_mode: CommitMode,
    /// Async mode: seal the running transaction once it has buffered
    /// this long (instead of waiting out the full `journal_window`),
    /// bounding how much acked-but-unsealed work a crash can lose.
    pub async_commit_window: Nanos,
    /// Async mode: per-lane bound on in-flight sealed batches. A
    /// mutation that would seal past this bound stalls (backpressure)
    /// until the lane's oldest flight lands.
    pub async_commit_max_inflight: usize,
    /// Dentry hash buckets per directory.
    pub dentry_buckets: u64,
    /// Ceiling on partitions a hot directory may split into. Partition
    /// counts double on each split (1→2→…→max) and never exceed
    /// `dentry_buckets` (a partition owns at least one bucket).
    pub dir_partition_max: u32,
    /// Journal append rate (appends per virtual second, measured over a
    /// sliding window by the leader) above which a directory partition
    /// requests a split. `0` disables load-triggered splitting —
    /// directories still partition via `ArkClient::set_dir_partitions`.
    pub partition_split_rate: u64,
    /// Append rate below which a multi-partition directory's partition-0
    /// leader requests a merge step (halving). `0` disables auto-merge.
    pub partition_merge_rate: u64,
    /// Group commit: one sealed journal flight may carry the sealed
    /// transactions of *other* locally-led directories mapped to the
    /// same commit lane, amortizing the per-flight store round trip.
    pub group_commit: bool,
    /// Permission caching mode (§III-C): cache remote directories'
    /// permissions + lookups until lease expiry, relaxing ACL consistency.
    pub permission_cache: bool,
    /// Model per-request FUSE user↔kernel overhead and the per-component
    /// LOOKUP storm (§IV-C)?
    pub fuse_model: bool,
    /// Number of lease managers. The paper uses one and leaves "a cluster
    /// of lease managers" as future work (§III-B); values > 1 partition
    /// directories across managers by inode number.
    pub lease_managers: usize,
    /// Lock stripes for the client's hot shared state (led-directory
    /// table, permission cache, open-handle table, ino RNG pool).
    /// Threads operating on distinct directories/files only contend
    /// when they hash to the same stripe; `1` restores a single global
    /// lock per table (the pre-striping behavior, kept for ablation).
    pub client_lock_stripes: usize,
    /// Retry/backoff policy for transient RPC failures (timeouts and
    /// resets on a real transport; the virtual bus never produces them,
    /// so the policy is inert in simulation).
    pub net_retry: arkfs_netsim::RetryPolicy,
    /// Cost constants for the simulated cluster.
    pub spec: ClusterSpec,
}

impl Default for ArkConfig {
    fn default() -> Self {
        ArkConfig {
            lease_period: 5 * SEC,
            lease_grace: 5 * SEC,
            lease_renew_margin: SEC,
            chunk_size: 2 * 1024 * 1024,
            cache_entries: 256,
            max_readahead: 8 * 1024 * 1024,
            readahead_full_at_zero: true,
            journal_window: SEC,
            journal_max_entries: 4096,
            journal_lanes: 4,
            commit_mode: CommitMode::Async,
            async_commit_window: 100 * MSEC,
            async_commit_max_inflight: 8,
            dentry_buckets: 16,
            dir_partition_max: 8,
            partition_split_rate: 0,
            partition_merge_rate: 0,
            group_commit: true,
            permission_cache: true,
            fuse_model: true,
            lease_managers: 1,
            client_lock_stripes: 16,
            net_retry: arkfs_netsim::RetryPolicy::default(),
            spec: ClusterSpec::aws_paper(),
        }
    }
}

impl ArkConfig {
    /// Small, fast configuration for unit tests: tiny chunks so chunking
    /// paths are exercised with little data, short lease periods, and no
    /// FUSE model.
    pub fn test_tiny() -> Self {
        ArkConfig {
            lease_period: 10 * MSEC,
            lease_grace: 10 * MSEC,
            lease_renew_margin: MSEC,
            chunk_size: 64,
            cache_entries: 8,
            max_readahead: 256,
            readahead_full_at_zero: true,
            journal_window: MSEC,
            journal_max_entries: 64,
            journal_lanes: 2,
            commit_mode: CommitMode::Async,
            // Tiny in-flight bound so unit tests exercise backpressure.
            async_commit_window: MSEC / 10,
            async_commit_max_inflight: 2,
            dentry_buckets: 4,
            dir_partition_max: 4,
            partition_split_rate: 0,
            partition_merge_rate: 0,
            group_commit: true,
            permission_cache: true,
            fuse_model: false,
            lease_managers: 1,
            // Few stripes so unit tests exercise stripe collisions.
            client_lock_stripes: 4,
            net_retry: arkfs_netsim::RetryPolicy::default(),
            spec: ClusterSpec::test_tiny(),
        }
    }

    pub fn with_permission_cache(mut self, on: bool) -> Self {
        self.permission_cache = on;
        self
    }

    pub fn with_max_readahead(mut self, bytes: u64) -> Self {
        self.max_readahead = bytes;
        self
    }

    /// Zero makes every operation seal its own journal transaction —
    /// useful for crash tests that need mutations durable immediately.
    /// Sets the async seal window too (it is a tighter bound on the same
    /// trigger).
    pub fn with_journal_window(mut self, window: Nanos) -> Self {
        self.journal_window = window;
        self.async_commit_window = self.async_commit_window.min(window);
        self
    }

    /// Select the commit pipeline ([`CommitMode::Sync`] is the ablation
    /// baseline).
    pub fn with_commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_mode = mode;
        self
    }

    /// Tune the async pipeline: seal window and per-lane in-flight bound
    /// (clamped to at least 1).
    pub fn with_async_commit(mut self, window: Nanos, max_inflight: usize) -> Self {
        self.async_commit_window = window;
        self.async_commit_max_inflight = max_inflight.max(1);
        self
    }

    pub fn with_fuse_model(mut self, on: bool) -> Self {
        self.fuse_model = on;
        self
    }

    pub fn with_lease_managers(mut self, n: usize) -> Self {
        self.lease_managers = n.max(1);
        self
    }

    /// `1` collapses every client-side table to one global lock (the
    /// ablation baseline); the default is 16.
    pub fn with_client_lock_stripes(mut self, n: usize) -> Self {
        self.client_lock_stripes = n.max(1);
        self
    }

    /// Configure hot-directory partitioning: the split ceiling and the
    /// load-trigger thresholds (appends per virtual second; `0` leaves a
    /// trigger disabled). The ceiling clamps to at least 1.
    pub fn with_dir_partitions(mut self, max: u32, split_rate: u64, merge_rate: u64) -> Self {
        self.dir_partition_max = max.max(1);
        self.partition_split_rate = split_rate;
        self.partition_merge_rate = merge_rate;
        self
    }

    /// Toggle cross-directory group commit on shared lanes (`true` is the
    /// default; `false` is the per-directory-flight ablation baseline).
    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    pub fn with_lease_period(mut self, period: Nanos, grace: Nanos) -> Self {
        self.lease_period = period;
        self.lease_grace = grace;
        self.lease_renew_margin = (period / 8).max(1);
        self
    }

    /// Number of chunks a file of `size` bytes occupies.
    pub fn chunk_count(&self, size: u64) -> u64 {
        size.div_ceil(self.chunk_size)
    }

    /// Split a byte offset into (chunk index, offset within chunk).
    pub fn chunk_of(&self, offset: u64) -> (u64, u64) {
        (offset / self.chunk_size, offset % self.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ArkConfig::default();
        assert_eq!(c.lease_period, 5 * SEC);
        assert_eq!(c.chunk_size, 2 * 1024 * 1024);
        assert_eq!(c.max_readahead, 8 * 1024 * 1024);
        assert_eq!(c.journal_window, SEC);
        assert!(c.permission_cache);
    }

    #[test]
    fn chunk_math() {
        let c = ArkConfig::test_tiny(); // 64-byte chunks
        assert_eq!(c.chunk_count(0), 0);
        assert_eq!(c.chunk_count(1), 1);
        assert_eq!(c.chunk_count(64), 1);
        assert_eq!(c.chunk_count(65), 2);
        assert_eq!(c.chunk_of(0), (0, 0));
        assert_eq!(c.chunk_of(63), (0, 63));
        assert_eq!(c.chunk_of(64), (1, 0));
        assert_eq!(c.chunk_of(130), (2, 2));
    }

    #[test]
    fn builders() {
        let c = ArkConfig::default()
            .with_permission_cache(false)
            .with_max_readahead(400 * 1024 * 1024);
        assert!(!c.permission_cache);
        assert_eq!(c.max_readahead, 400 * 1024 * 1024);
    }

    #[test]
    fn commit_mode_builders() {
        let c = ArkConfig::default();
        assert_eq!(c.commit_mode, CommitMode::Async);
        let c = c.with_commit_mode(CommitMode::Sync).with_async_commit(7, 0);
        assert_eq!(c.commit_mode, CommitMode::Sync);
        assert_eq!(c.async_commit_window, 7);
        assert_eq!(
            c.async_commit_max_inflight, 1,
            "in-flight bound clamps to 1"
        );
        // A zero journal window drags the async seal window down with it.
        let c = ArkConfig::default().with_journal_window(0);
        assert_eq!(c.async_commit_window, 0);
    }

    #[test]
    fn partition_builders() {
        let c = ArkConfig::default();
        assert_eq!(c.dir_partition_max, 8);
        assert_eq!(c.partition_split_rate, 0);
        assert!(c.group_commit);
        let c = c
            .with_dir_partitions(0, 50_000, 1_000)
            .with_group_commit(false);
        assert_eq!(c.dir_partition_max, 1, "ceiling clamps to 1");
        assert_eq!(c.partition_split_rate, 50_000);
        assert_eq!(c.partition_merge_rate, 1_000);
        assert!(!c.group_commit);
    }
}
