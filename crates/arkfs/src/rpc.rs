//! Client↔client RPC protocol: the operations a non-leader forwards to a
//! directory leader (§III-B: "the rest of the clients who failed to get a
//! lease should send their requests to the directory leader so that the
//! directory leader can perform the requested operations on behalf of the
//! other clients"), plus file-lease traffic and cache-flush broadcasts.

use crate::meta::InodeRecord;
use arkfs_lease::FileLeaseDecision;
use arkfs_netsim::NodeId;
use arkfs_vfs::{Acl, Credentials, DirEntry, FileType, FsError, Ino, SetAttr};

/// A forwarded file-system operation, carrying the originator's
/// credentials so the leader can enforce permissions ("If C1 does not
/// have a permission to access /home/doc/bar.txt, C2 will return a
/// permission error").
#[derive(Debug, Clone)]
pub struct OpRequest {
    pub creds: Credentials,
    pub body: OpBody,
}

/// The operation itself. `dir` is always the directory the destination
/// client is expected to lead.
#[derive(Debug, Clone)]
pub enum OpBody {
    /// Resolve `name` in `dir`; returns the dentry and, for non-directory
    /// children, the inode record.
    Lookup {
        dir: Ino,
        name: String,
    },
    /// The directory's own inode record (stat / permission info; feeds
    /// the permission cache).
    DirInode {
        dir: Ino,
    },
    /// Create a regular file or symlink with a caller-allocated inode.
    Create {
        dir: Ino,
        name: String,
        rec: InodeRecord,
    },
    /// Register a subdirectory entry (inode object already written).
    AddSubdir {
        dir: Ino,
        name: String,
        child: Ino,
    },
    /// Unlink a file/symlink; returns its final inode record so the
    /// caller can delete the data chunks.
    Unlink {
        dir: Ino,
        name: String,
    },
    /// Remove an empty-subdirectory entry.
    RemoveSubdir {
        dir: Ino,
        name: String,
    },
    Readdir {
        dir: Ino,
    },
    /// Post-write size/mtime update for a child file.
    SetSize {
        dir: Ino,
        ino: Ino,
        size: u64,
    },
    /// setattr on a child file/symlink.
    SetAttrChild {
        dir: Ino,
        ino: Ino,
        attr: SetAttr,
    },
    /// setattr on the directory itself.
    SetAttrDir {
        dir: Ino,
        attr: SetAttr,
    },
    /// Replace the ACL of the directory (`target == dir`) or a child.
    SetAcl {
        dir: Ino,
        target: Ino,
        acl: Acl,
    },
    /// Same-directory rename.
    RenameLocal {
        dir: Ino,
        from: String,
        to: String,
    },
    /// 2PC rename, source half: journal a prepare that removes `name`,
    /// detach it in memory, and return what moved.
    RenameSrcPrepare {
        dir: Ino,
        name: String,
        txid: u128,
        peer: Ino,
    },
    /// 2PC rename, destination half: journal a prepare that inserts the
    /// entry, attach it in memory.
    RenameDstPrepare {
        dir: Ino,
        name: String,
        txid: u128,
        peer: Ino,
        ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
    },
    /// 2PC decision. On abort of a source half, `undo` carries the
    /// detached entry to re-attach.
    RenameDecide {
        dir: Ino,
        txid: u128,
        commit: bool,
        undo: Option<(String, Ino, FileType, Option<InodeRecord>)>,
    },
    /// File lease traffic (§III-D): leaders manage child files' leases.
    AcquireReadLease {
        dir: Ino,
        file: Ino,
        client: NodeId,
    },
    AcquireWriteLease {
        dir: Ino,
        file: Ino,
        client: NodeId,
    },
    ReleaseFileLease {
        dir: Ino,
        file: Ino,
        client: NodeId,
    },
    /// Cache-flush broadcast from a leader to a lease holder: write back
    /// and drop cached chunks of `file`.
    FlushCache {
        file: Ino,
    },
    /// Durability barrier on one directory (async commit pipeline):
    /// seal and flush the running transaction and drain the directory's
    /// commit lane before responding, so the caller's `fsync` contract
    /// holds even when the leader acks mutations before durability.
    FsyncDir {
        dir: Ino,
    },
}

/// Responses to [`OpRequest`]s.
#[derive(Debug, Clone)]
pub enum OpResponse {
    /// Lookup result: the dentry target, with the inode record for
    /// non-directory children.
    Entry {
        ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
    },
    /// An inode record (DirInode, Unlink, SetAttr*).
    Inode(InodeRecord),
    Entries(Vec<DirEntry>),
    /// Rename source half: what was detached.
    Detached {
        ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
    },
    Lease(FileLeaseDecision),
    /// FlushCache result: the flushed client's local view of the file
    /// size (None when it held no dirty data).
    Flushed {
        size: Option<u64>,
    },
    Ok,
    /// The destination no longer leads `dir` (lease lapsed and someone
    /// else may own it); the caller goes back to the lease manager.
    NotLeader,
    Err(FsError),
}

impl OpResponse {
    /// Fold an `FsResult` into a response.
    pub fn from_result<T, F: FnOnce(T) -> OpResponse>(r: Result<T, FsError>, f: F) -> OpResponse {
        match r {
            Ok(v) => f(v),
            Err(e) => OpResponse::Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_result_folds() {
        let ok: Result<u32, FsError> = Ok(5);
        assert!(matches!(
            OpResponse::from_result(ok, |_| OpResponse::Ok),
            OpResponse::Ok
        ));
        let err: Result<u32, FsError> = Err(FsError::NotFound);
        assert!(matches!(
            OpResponse::from_result(err, |_| OpResponse::Ok),
            OpResponse::Err(FsError::NotFound)
        ));
    }
}
