//! Client↔client RPC protocol: the operations a non-leader forwards to a
//! directory leader (§III-B: "the rest of the clients who failed to get a
//! lease should send their requests to the directory leader so that the
//! directory leader can perform the requested operations on behalf of the
//! other clients"), plus file-lease traffic and cache-flush broadcasts.

use crate::meta::InodeRecord;
use arkfs_lease::FileLeaseDecision;
use arkfs_netsim::NodeId;
use arkfs_telemetry::{ctx, TraceCtx};
use arkfs_vfs::{Acl, Credentials, DirEntry, FileType, FsError, Ino, SetAttr};

/// A forwarded file-system operation, carrying the originator's
/// credentials so the leader can enforce permissions ("If C1 does not
/// have a permission to access /home/doc/bar.txt, C2 will return a
/// permission error") and the causal [`TraceCtx`] of the client op
/// that issued it, so spans recorded while serving the request link
/// back to the originating trace.
#[derive(Debug, Clone)]
pub struct OpRequest {
    pub creds: Credentials,
    pub trace: TraceCtx,
    pub body: OpBody,
}

impl OpRequest {
    /// Build a request stamped with the calling thread's ambient
    /// trace context (see [`arkfs_telemetry::ctx`]).
    pub fn new(creds: Credentials, body: OpBody) -> OpRequest {
        OpRequest {
            creds,
            trace: ctx::current(),
            body,
        }
    }
}

/// The operation itself. `dir` is always the directory the destination
/// client is expected to lead.
#[derive(Debug, Clone)]
pub enum OpBody {
    /// Resolve `name` in `dir`; returns the dentry and, for non-directory
    /// children, the inode record.
    Lookup {
        dir: Ino,
        name: String,
    },
    /// The directory's own inode record (stat / permission info; feeds
    /// the permission cache).
    DirInode {
        dir: Ino,
    },
    /// Create a regular file or symlink with a caller-allocated inode.
    Create {
        dir: Ino,
        name: String,
        rec: InodeRecord,
    },
    /// Register a subdirectory entry (inode object already written).
    AddSubdir {
        dir: Ino,
        name: String,
        child: Ino,
    },
    /// Unlink a file/symlink; returns its final inode record so the
    /// caller can delete the data chunks.
    Unlink {
        dir: Ino,
        name: String,
    },
    /// Remove an empty-subdirectory entry.
    RemoveSubdir {
        dir: Ino,
        name: String,
    },
    /// List one partition's slice of the directory (`partition` is 0 for
    /// unpartitioned directories); the caller merges the slices.
    Readdir {
        dir: Ino,
        partition: u32,
    },
    /// Post-write size/mtime update for a child file. `name` routes the
    /// request to the partition owning the child's dentry.
    SetSize {
        dir: Ino,
        name: String,
        ino: Ino,
        size: u64,
    },
    /// setattr on a child file/symlink (`name` routes, as in `SetSize`).
    SetAttrChild {
        dir: Ino,
        name: String,
        ino: Ino,
        attr: SetAttr,
    },
    /// setattr on the directory itself.
    SetAttrDir {
        dir: Ino,
        attr: SetAttr,
    },
    /// Replace the ACL of the directory (`target == dir`, empty `name`,
    /// handled by partition 0) or a child (`name` routes).
    SetAcl {
        dir: Ino,
        name: String,
        target: Ino,
        acl: Acl,
    },
    /// Same-directory rename.
    RenameLocal {
        dir: Ino,
        from: String,
        to: String,
    },
    /// 2PC rename, source half: journal a prepare that removes `name`,
    /// detach it in memory, and return what moved.
    RenameSrcPrepare {
        dir: Ino,
        name: String,
        txid: u128,
        peer: Ino,
    },
    /// 2PC rename, destination half: journal a prepare that inserts the
    /// entry, attach it in memory.
    RenameDstPrepare {
        dir: Ino,
        name: String,
        txid: u128,
        peer: Ino,
        ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
    },
    /// 2PC decision; `name` routes it to the partition that journaled
    /// the matching prepare. On abort of a source half, `undo` carries
    /// the detached entry to re-attach.
    RenameDecide {
        dir: Ino,
        name: String,
        txid: u128,
        commit: bool,
        undo: Option<(String, Ino, FileType, Option<InodeRecord>)>,
    },
    /// File lease traffic (§III-D): leaders manage child files' leases.
    AcquireReadLease {
        dir: Ino,
        file: Ino,
        client: NodeId,
    },
    AcquireWriteLease {
        dir: Ino,
        file: Ino,
        client: NodeId,
    },
    ReleaseFileLease {
        dir: Ino,
        file: Ino,
        client: NodeId,
    },
    /// Cache-flush broadcast from a leader to a lease holder: write back
    /// and drop cached chunks of `file`.
    FlushCache {
        file: Ino,
    },
    /// Durability barrier on one directory partition (async commit
    /// pipeline): seal and flush the running transaction and drain the
    /// partition's commit lane before responding, so the caller's
    /// `fsync` contract holds even when the leader acks mutations before
    /// durability. A partitioned directory's fsync fans this out to
    /// every partition.
    FsyncDir {
        dir: Ino,
        partition: u32,
    },
    /// Split/merge handoff: ask the current leader of `partition` to
    /// quiesce it — commit and checkpoint its journal — and release its
    /// lease so the new partition map can take effect.
    RelinquishPartition {
        dir: Ino,
        partition: u32,
    },
}

impl OpBody {
    /// Whether a successful serve of this op changes directory state
    /// that an async-mode leader may ack before it is durable. `sync_all`
    /// uses this to track which directories still owe a barrier.
    pub fn mutates(&self) -> bool {
        matches!(
            self,
            OpBody::Create { .. }
                | OpBody::AddSubdir { .. }
                | OpBody::Unlink { .. }
                | OpBody::RemoveSubdir { .. }
                | OpBody::SetSize { .. }
                | OpBody::SetAttrChild { .. }
                | OpBody::SetAttrDir { .. }
                | OpBody::SetAcl { .. }
                | OpBody::RenameLocal { .. }
                | OpBody::RenameSrcPrepare { .. }
                | OpBody::RenameDstPrepare { .. }
                | OpBody::RenameDecide { .. }
        )
    }
}

/// Responses to [`OpRequest`]s.
#[derive(Debug, Clone)]
pub enum OpResponse {
    /// Lookup result: the dentry target, with the inode record for
    /// non-directory children.
    Entry {
        ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
    },
    /// An inode record (DirInode, Unlink, SetAttr*).
    Inode(InodeRecord),
    /// One partition's slice of a readdir, plus the serving table's
    /// partition count. `partitions` is the staleness guard: a caller
    /// that routed with an out-of-date map (readdir carries no name for
    /// the server to validate) sees a count different from the one it
    /// fanned out over, refreshes its map, and redoes the merge.
    Entries {
        entries: Vec<DirEntry>,
        partitions: u32,
    },
    /// Rename source half: what was detached.
    Detached {
        ino: Ino,
        ftype: FileType,
        rec: Option<InodeRecord>,
    },
    Lease(FileLeaseDecision),
    /// FlushCache result: the flushed client's local view of the file
    /// size (None when it held no dirty data).
    Flushed {
        size: Option<u64>,
    },
    Ok,
    /// The destination no longer leads `dir` (lease lapsed and someone
    /// else may own it); the caller goes back to the lease manager.
    NotLeader,
    Err(FsError),
}

impl OpResponse {
    /// Fold an `FsResult` into a response.
    pub fn from_result<T, F: FnOnce(T) -> OpResponse>(r: Result<T, FsError>, f: F) -> OpResponse {
        match r {
            Ok(v) => f(v),
            Err(e) => OpResponse::Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_result_folds() {
        let ok: Result<u32, FsError> = Ok(5);
        assert!(matches!(
            OpResponse::from_result(ok, |_| OpResponse::Ok),
            OpResponse::Ok
        ));
        let err: Result<u32, FsError> = Err(FsError::NotFound);
        assert!(matches!(
            OpResponse::from_result(err, |_| OpResponse::Ok),
            OpResponse::Err(FsError::NotFound)
        ));
    }
}
