//! The ArkFS client: near-POSIX operations with client-driven metadata.
//!
//! Each [`ArkClient`] is one simulated process. It resolves paths
//! component by component; for every directory it either *leads* (holds
//! the lease and the [`Metatable`]) or forwards to the leader over RPC
//! (§III-B, Figure 3). Data I/O goes through the write-back
//! [`DataCache`] under per-file read/write leases (§III-D), and all
//! mutations are journaled per directory (§III-E).

use crate::cache::DataCache;
use crate::cluster::{manager_node, ArkCluster};
use crate::config::ArkConfig;
use crate::meta::InodeRecord;
use crate::metatable::Metatable;
use crate::prt::Prt;
use crate::rpc::{OpBody, OpRequest, OpResponse};
use arkfs_lease::{FileLeaseDecision, LeaseRequest, LeaseResponse};
use arkfs_netsim::{NetError, NodeId, Service};
use arkfs_objstore::ObjectKey;
use arkfs_simkit::{Nanos, Port, SharedResource};
use arkfs_telemetry::{Counter, LatencyHistogram, Telemetry, PID_CLIENT};
use arkfs_vfs::{
    path as vpath, perm, Acl, Credentials, DirEntry, FileHandle, FileType, FsError, FsResult,
    FsStats, Ino, OpenFlags, SetAttr, Stat, Vfs, AM_EXEC, AM_READ, AM_WRITE, ROOT_INO,
};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How often a non-leader retries lease acquisition before giving up.
const MAX_LEASE_RETRIES: usize = 16;

/// A cached view of a remote directory used in permission-cache mode
/// (§III-C): its inode (permissions + stat) and recent lookup results,
/// valid for one lease period.
#[derive(Debug, Clone)]
struct PermCacheEntry {
    dir: InodeRecord,
    lookups: HashMap<String, Option<(Ino, FileType)>>,
    expires_at: Nanos,
}

/// Per-open-file state, including the read-ahead window (§III-D).
#[derive(Debug)]
struct OpenFile {
    ino: Ino,
    parent: Ino,
    flags: OpenFlags,
    /// Local view of the file size (updated by writes; pushed to the
    /// leader on fsync/close).
    size: u64,
    /// True while data goes through the cache (valid file lease); false
    /// in direct-I/O mode after a lease conflict.
    cached: bool,
    wrote: bool,
    /// Current read-ahead window in bytes (0 = no prefetch).
    ra_window: u64,
    /// End offset of the previous read (sequentiality detection).
    last_pos: u64,
}

/// Everything shared between the client's own thread and its RPC service
/// handler (which runs on the *caller's* thread).
pub(crate) struct ClientState {
    id: NodeId,
    cluster: Arc<ArkCluster>,
    /// Directories this client currently leads.
    tables: Mutex<HashMap<Ino, Arc<Mutex<Metatable>>>>,
    /// Lease expiry per led directory.
    leases: Mutex<HashMap<Ino, Nanos>>,
    /// Last-known leaders of remote directories.
    remote_hints: Mutex<HashMap<Ino, NodeId>>,
    /// Permission cache (pcache mode).
    pcache: Mutex<HashMap<Ino, PermCacheEntry>>,
    handles: Mutex<HashMap<u64, OpenFile>>,
    next_handle: AtomicU64,
    cache: Mutex<DataCache>,
    /// Serializes operations this client serves as a leader (its "CPU").
    server: SharedResource,
    /// Commit lanes; directories map statically by inode number.
    lanes: Vec<SharedResource>,
    rng: Mutex<StdRng>,
    crashed: AtomicBool,
    /// Deployment-wide telemetry (shared with the object store and
    /// lease managers).
    telemetry: Arc<Telemetry>,
    /// Registry handles for the data-cache hit/miss counters, cloned
    /// into every [`DataCache`] this client creates.
    cache_counters: (Arc<Counter>, Arc<Counter>),
    /// Per-op latency histograms, resolved lazily from the registry
    /// (`op.<name>.latency_ns`).
    op_hists: Mutex<HashMap<&'static str, Arc<LatencyHistogram>>>,
    /// Flush epoch: bumped by every `sync_all`. `statfs` memoizes its
    /// inode count per epoch (see [`ArkClient::statfs`]).
    flush_epoch: AtomicU64,
    /// `(epoch, inode count)` of the last full inode LIST.
    statfs_cache: Mutex<Option<(u64, u64)>>,
}

/// One ArkFS client process.
pub struct ArkClient {
    state: Arc<ClientState>,
    port: Port,
}

struct ClientService(Arc<ClientState>);

impl Service<OpRequest, OpResponse> for ClientService {
    fn handle(&self, arrival: Nanos, req: OpRequest) -> (OpResponse, Nanos) {
        if self.0.crashed.load(Ordering::Acquire) {
            return (OpResponse::NotLeader, arrival);
        }
        let spec = &self.0.cluster.config().spec;
        let start = self.0.server.reserve(arrival, spec.leader_op_service);
        let port = Port::starting_at(start);
        let resp = self.0.serve(&port, req);
        (resp, port.now())
    }
}

impl ArkClient {
    pub(crate) fn new(cluster: Arc<ArkCluster>, id: NodeId) -> Arc<Self> {
        let config = cluster.config().clone();
        let lanes = (0..config.journal_lanes.max(1))
            .map(|_| SharedResource::ideal("commit-lane"))
            .collect();
        let telemetry = Arc::clone(cluster.telemetry());
        let cache_counters = (
            telemetry.registry.counter("cache.hit.count"),
            telemetry.registry.counter("cache.miss.count"),
        );
        let mut cache = DataCache::new(config.cache_entries);
        cache.attach_counters(Arc::clone(&cache_counters.0), Arc::clone(&cache_counters.1));
        let state = Arc::new(ClientState {
            id,
            cluster: Arc::clone(&cluster),
            tables: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
            remote_hints: Mutex::new(HashMap::new()),
            pcache: Mutex::new(HashMap::new()),
            handles: Mutex::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
            cache: Mutex::new(cache),
            server: SharedResource::ideal("leader-server"),
            lanes,
            rng: Mutex::new(StdRng::seed_from_u64(0xA2F5_0000 ^ id.0 as u64)),
            crashed: AtomicBool::new(false),
            telemetry,
            cache_counters,
            op_hists: Mutex::new(HashMap::new()),
            flush_epoch: AtomicU64::new(0),
            statfs_cache: Mutex::new(None),
        });
        cluster
            .ops_bus()
            .register(id, Arc::new(ClientService(Arc::clone(&state))));
        Arc::new(ArkClient {
            state,
            port: Port::new(),
        })
    }

    /// This client's network identity.
    pub fn id(&self) -> NodeId {
        self.state.id
    }

    /// The client's virtual timeline (benchmark harness access).
    pub fn port(&self) -> &Port {
        &self.port
    }

    /// Number of directories this client currently leads.
    pub fn led_directories(&self) -> usize {
        self.state.tables.lock().len()
    }

    /// Data-cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.state.cache.lock();
        (c.hits(), c.misses())
    }

    /// Deployment-wide telemetry: the metrics registry (counters,
    /// gauges, latency histograms) and span tracer shared by this
    /// client, the object store, the metadata path, and the lease
    /// managers.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.state.telemetry
    }

    /// Drop all CLEAN cached data (the fio benchmark's "drop the cache
    /// entries of written files" step, §IV-B). Dirty chunks are flushed
    /// first.
    pub fn drop_data_cache(&self) -> FsResult<()> {
        let dirty = self.state.cache.lock().take_all_dirty();
        self.write_back(dirty)?;
        *self.state.cache.lock() = self.state.fresh_cache(self.config().cache_entries);
        Ok(())
    }

    /// Simulate a hard crash: stop serving, drop ALL in-memory state
    /// without flushing. Journaled-but-unapplied transactions stay in the
    /// object store for the next leader to recover (§III-E.1).
    pub fn crash(&self) {
        self.state.crashed.store(true, Ordering::Release);
        self.state.cluster.ops_bus().disconnect(self.state.id);
        self.state.tables.lock().clear();
        self.state.leases.lock().clear();
        self.state.handles.lock().clear();
        self.state.pcache.lock().clear();
        *self.state.cache.lock() = self
            .state
            .fresh_cache(self.state.cluster.config().cache_entries);
    }

    /// Flush everything and hand every directory lease back cleanly.
    pub fn release_all(&self, ctx: &Credentials) -> FsResult<()> {
        self.sync_all(ctx)?;
        let dirs: Vec<Ino> = self.state.tables.lock().keys().copied().collect();
        for dir in dirs {
            self.state.tables.lock().remove(&dir);
            self.state.leases.lock().remove(&dir);
            let _ = self.state.cluster.lease_bus().call(
                &self.port,
                manager_node(dir, self.config().lease_managers),
                LeaseRequest::Release {
                    client: self.state.id,
                    ino: dir,
                },
            );
        }
        Ok(())
    }

    // ---- internal helpers --------------------------------------------------

    fn config(&self) -> &ArkConfig {
        self.state.cluster.config()
    }

    fn prt(&self) -> &Arc<Prt> {
        self.state.cluster.prt()
    }

    /// Run one client-facing op under telemetry: its virtual duration
    /// feeds the `op.<name>.latency_ns` histogram, and (when tracing is
    /// enabled) a span lands on this client's track.
    fn traced<T>(&self, name: &'static str, f: impl FnOnce() -> FsResult<T>) -> FsResult<T> {
        let start = self.port.now();
        let r = f();
        let end = self.port.now();
        self.state.op_hist(name).record(end.saturating_sub(start));
        let tracer = &self.state.telemetry.tracer;
        if tracer.enabled() {
            tracer.record(PID_CLIENT, self.state.id.0, name, "op", start, end);
        }
        r
    }

    fn fresh_ino(&self) -> Ino {
        loop {
            let ino: u128 = self.state.rng.lock().random();
            if ino > ROOT_INO {
                return ino;
            }
        }
    }

    fn fuse_charge(&self, requests: usize) {
        if self.config().fuse_model {
            self.port
                .advance(self.config().spec.fuse_op_cost * requests as u64);
        }
    }

    /// Local-or-remote handle on a directory.
    fn dir_ref(&self, dir: Ino) -> FsResult<DirRef> {
        self.state.dir_ref(&self.port, dir)
    }

    /// One path-resolution step: find `name` in `dir`, checking exec
    /// permission on `dir` for `ctx`.
    fn lookup_step(&self, ctx: &Credentials, dir: Ino, name: &str) -> FsResult<(Ino, FileType)> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let t = table.lock();
                perm::check_access(ctx, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, AM_EXEC)?;
                let entry = t.lookup(name).ok_or(FsError::NotFound)?;
                Ok((entry.ino, entry.ftype))
            }
            DirRef::Remote(leader) => {
                if self.config().permission_cache {
                    if let Some(hit) = self.pcache_lookup(ctx, dir, name)? {
                        return hit;
                    }
                }
                let resp = self.remote_call(
                    ctx,
                    dir,
                    leader,
                    OpBody::Lookup {
                        dir,
                        name: name.to_string(),
                    },
                )?;
                match resp {
                    OpResponse::Entry { ino, ftype, .. } => {
                        if self.config().permission_cache {
                            self.pcache_note(dir, name, Some((ino, ftype)));
                        }
                        Ok((ino, ftype))
                    }
                    OpResponse::Err(FsError::NotFound) => {
                        if self.config().permission_cache {
                            self.pcache_note(dir, name, None);
                        }
                        Err(FsError::NotFound)
                    }
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected lookup response".into())),
                }
            }
        }
    }

    /// Try the permission cache: returns `Some(result)` on a conclusive
    /// hit, `None` when the caller must RPC. Also checks exec permission
    /// locally from the cached directory inode.
    fn pcache_lookup(
        &self,
        ctx: &Credentials,
        dir: Ino,
        name: &str,
    ) -> FsResult<Option<FsResult<(Ino, FileType)>>> {
        let now = self.port.now();
        let pc = self.state.pcache.lock();
        let entry = match pc.get(&dir) {
            Some(e) if e.expires_at > now => e,
            _ => {
                drop(pc);
                self.pcache_fill(ctx, dir)?;
                return Ok(None);
            }
        };
        perm::check_access(
            ctx,
            entry.dir.uid,
            entry.dir.gid,
            entry.dir.mode,
            &entry.dir.acl,
            AM_EXEC,
        )?;
        self.port.advance(self.config().spec.local_meta_op);
        Ok(entry.lookups.get(name).map(|cached| match cached {
            Some(hit) => Ok(*hit),
            None => Err(FsError::NotFound),
        }))
    }

    /// Fetch and cache a remote directory's inode (permission info).
    fn pcache_fill(&self, _ctx: &Credentials, dir: Ino) -> FsResult<()> {
        let rec = self.dir_inode(dir)?;
        let expires_at = self.port.now() + self.config().lease_period;
        self.state.pcache.lock().insert(
            dir,
            PermCacheEntry {
                dir: rec,
                lookups: HashMap::new(),
                expires_at,
            },
        );
        Ok(())
    }

    fn pcache_note(&self, dir: Ino, name: &str, result: Option<(Ino, FileType)>) {
        if let Some(entry) = self.state.pcache.lock().get_mut(&dir) {
            entry.lookups.insert(name.to_string(), result);
        }
    }

    fn pcache_forget(&self, dir: Ino) {
        self.state.pcache.lock().remove(&dir);
    }

    /// The inode record of a directory, local or remote.
    fn dir_inode(&self, dir: Ino) -> FsResult<InodeRecord> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                Ok(table.lock().dir.clone())
            }
            DirRef::Remote(leader) => {
                let resp =
                    self.remote_call(&Credentials::root(), dir, leader, OpBody::DirInode { dir })?;
                match resp {
                    OpResponse::Inode(rec) => Ok(rec),
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected dir-inode response".into())),
                }
            }
        }
    }

    /// RPC to a directory's leader, retrying through the lease manager
    /// when the leader changed.
    fn remote_call(
        &self,
        ctx: &Credentials,
        dir: Ino,
        mut leader: NodeId,
        body: OpBody,
    ) -> FsResult<OpResponse> {
        for _ in 0..MAX_LEASE_RETRIES {
            let req = OpRequest {
                creds: ctx.clone(),
                body: body.clone(),
            };
            match self.state.cluster.ops_bus().call(&self.port, leader, req) {
                Ok(OpResponse::NotLeader) | Err(NetError::Unreachable) => {
                    self.state.remote_hints.lock().remove(&dir);
                    match self.dir_ref(dir)? {
                        DirRef::Remote(next) => leader = next,
                        DirRef::Local(table) => {
                            // We became the leader ourselves; execute
                            // locally through the common serve path.
                            let req = OpRequest {
                                creds: ctx.clone(),
                                body: body.clone(),
                            };
                            return Ok(self.state.serve_local(&self.port, &table, req));
                        }
                    }
                }
                Ok(resp) => return Ok(resp),
            }
        }
        Err(FsError::TimedOut)
    }

    /// Run an operation against a directory: locally when we lead it,
    /// else forwarded to the leader.
    fn on_dir(&self, ctx: &Credentials, dir: Ino, body: OpBody) -> FsResult<OpResponse> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let req = OpRequest {
                    creds: ctx.clone(),
                    body,
                };
                Ok(self.state.serve_local(&self.port, &table, req))
            }
            DirRef::Remote(leader) => self.remote_call(ctx, dir, leader, body),
        }
    }

    /// Resolve all but the final component of `path`, checking exec
    /// permission along the way. Returns (parent dir ino, final name).
    fn resolve_parent<'p>(&self, ctx: &Credentials, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parents, name) = vpath::split_parent(path)?;
        // FUSE sends one LOOKUP per component plus the final request.
        self.fuse_charge(parents.len() + 2);
        let mut dir = ROOT_INO;
        for comp in parents {
            let (ino, ftype) = self.lookup_step(ctx, dir, comp)?;
            if ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            dir = ino;
        }
        Ok((dir, name))
    }

    /// Resolve a full path to (ino, ftype), where the final component may
    /// be anything. `/` resolves to the root directory.
    fn resolve(&self, ctx: &Credentials, path: &str) -> FsResult<(Ino, FileType)> {
        let comps = vpath::components(path)?;
        if comps.is_empty() {
            self.fuse_charge(1);
            return Ok((ROOT_INO, FileType::Directory));
        }
        let (dir, name) = self.resolve_parent(ctx, path)?;
        self.lookup_step(ctx, dir, name)
    }

    /// The final inode record of a path (for stat/open/ACL reads).
    fn resolve_record(&self, ctx: &Credentials, path: &str) -> FsResult<(Ino, InodeRecord)> {
        let comps = vpath::components(path)?;
        if comps.is_empty() {
            self.fuse_charge(1);
            let rec = self.dir_inode(ROOT_INO)?;
            return Ok((ROOT_INO, rec));
        }
        let (dir, name) = self.resolve_parent(ctx, path)?;
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let t = table.lock();
                perm::check_access(ctx, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, AM_EXEC)?;
                let entry = t.lookup(name).ok_or(FsError::NotFound)?;
                if entry.ftype == FileType::Directory {
                    let ino = entry.ino;
                    drop(t);
                    let rec = self.dir_inode(ino)?;
                    Ok((ino, rec))
                } else {
                    let rec = t
                        .child_inode(entry.ino)
                        .cloned()
                        .ok_or_else(|| FsError::Io("dangling dentry".into()))?;
                    Ok((entry.ino, rec))
                }
            }
            DirRef::Remote(leader) => {
                let resp = self.remote_call(
                    ctx,
                    dir,
                    leader,
                    OpBody::Lookup {
                        dir,
                        name: name.to_string(),
                    },
                )?;
                match resp {
                    OpResponse::Entry { ino, ftype, rec } => {
                        if self.config().permission_cache {
                            self.pcache_note(dir, name, Some((ino, ftype)));
                        }
                        match rec {
                            Some(rec) => Ok((ino, rec)),
                            None => {
                                // Directory: ask its own leader.
                                let rec = self.dir_inode(ino)?;
                                Ok((ino, rec))
                            }
                        }
                    }
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected lookup response".into())),
                }
            }
        }
    }

    // ---- file leases --------------------------------------------------------

    /// Acquire a read lease on `file` from the leader of `parent`.
    /// Returns whether caching is allowed.
    fn file_lease_read(&self, parent: Ino, file: Ino) -> FsResult<bool> {
        let body = OpBody::AcquireReadLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        match self.on_dir(&Credentials::root(), parent, body)? {
            OpResponse::Lease(FileLeaseDecision::Granted { .. }) => Ok(true),
            OpResponse::Lease(FileLeaseDecision::Direct { .. }) => Ok(false),
            OpResponse::Err(e) => Err(e),
            _ => Err(FsError::Io("unexpected lease response".into())),
        }
    }

    fn file_lease_write(&self, parent: Ino, file: Ino) -> FsResult<bool> {
        let body = OpBody::AcquireWriteLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        match self.on_dir(&Credentials::root(), parent, body)? {
            OpResponse::Lease(FileLeaseDecision::Granted { .. }) => Ok(true),
            OpResponse::Lease(FileLeaseDecision::Direct { .. }) => {
                // Our own cached data must go to the store before direct
                // mode.
                self.flush_file_data(file)?;
                self.state.cache.lock().invalidate_file(file);
                Ok(false)
            }
            OpResponse::Err(e) => Err(e),
            _ => Err(FsError::Io("unexpected lease response".into())),
        }
    }

    fn release_file_lease(&self, parent: Ino, file: Ino) {
        let body = OpBody::ReleaseFileLease {
            dir: parent,
            file,
            client: self.state.id,
        };
        let _ = self.on_dir(&Credentials::root(), parent, body);
    }

    /// Write back this client's dirty chunks of one file.
    fn flush_file_data(&self, file: Ino) -> FsResult<()> {
        let dirty = self.state.cache.lock().take_dirty(file);
        if dirty.is_empty() {
            return Ok(());
        }
        let items: Vec<(ObjectKey, Bytes)> = dirty
            .into_iter()
            .map(|(chunk, data)| (ObjectKey::data_chunk(file, chunk), Bytes::from(data)))
            .collect();
        for r in self.prt().store().put_many(&self.port, items) {
            r.map_err(crate::prt::map_os_err)?;
        }
        Ok(())
    }

    /// Write back evicted dirty chunks returned by the cache.
    fn write_back(&self, evicted: Vec<crate::cache::Evicted>) -> FsResult<()> {
        if evicted.is_empty() {
            return Ok(());
        }
        let items: Vec<(ObjectKey, Bytes)> = evicted
            .into_iter()
            .map(|e| (ObjectKey::data_chunk(e.ino, e.chunk), Bytes::from(e.data)))
            .collect();
        for r in self.prt().store().put_many(&self.port, items) {
            r.map_err(crate::prt::map_os_err)?;
        }
        Ok(())
    }

    /// Push size/mtime to the parent leader and make the journal durable
    /// (fsync semantics).
    fn push_size(&self, ctx: &Credentials, parent: Ino, file: Ino, size: u64) -> FsResult<()> {
        match self.on_dir(
            ctx,
            parent,
            OpBody::SetSize {
                dir: parent,
                ino: file,
                size,
            },
        )? {
            OpResponse::Ok => Ok(()),
            OpResponse::Err(e) => Err(e),
            _ => Err(FsError::Io("unexpected setsize response".into())),
        }
    }
}

/// A directory as seen from one client.
pub(crate) enum DirRef {
    Local(Arc<Mutex<Metatable>>),
    Remote(NodeId),
}

impl ClientState {
    /// A new [`DataCache`] wired to the shared hit/miss counters.
    fn fresh_cache(&self, entries: usize) -> DataCache {
        let mut cache = DataCache::new(entries);
        cache.attach_counters(
            Arc::clone(&self.cache_counters.0),
            Arc::clone(&self.cache_counters.1),
        );
        cache
    }

    /// The `op.<name>.latency_ns` histogram, memoized per op name.
    fn op_hist(&self, name: &'static str) -> Arc<LatencyHistogram> {
        let mut hists = self.op_hists.lock();
        if let Some(h) = hists.get(name) {
            return Arc::clone(h);
        }
        let h = self
            .telemetry
            .registry
            .histogram(&format!("{name}.latency_ns"));
        hists.insert(name, Arc::clone(&h));
        h
    }

    fn lane(&self, dir: Ino) -> &SharedResource {
        &self.lanes[(dir % self.lanes.len() as u128) as usize]
    }

    fn table(&self, dir: Ino) -> Option<Arc<Mutex<Metatable>>> {
        self.tables.lock().get(&dir).cloned()
    }

    /// Resolve a directory to a local metatable (leading it, acquiring or
    /// extending the lease as needed) or the current remote leader.
    fn dir_ref(&self, port: &Port, dir: Ino) -> FsResult<DirRef> {
        let config = self.cluster.config();
        for _ in 0..MAX_LEASE_RETRIES {
            let now = port.now();
            if let Some(table) = self.table(dir) {
                let expiry = self.leases.lock().get(&dir).copied().unwrap_or(0);
                if expiry > now.saturating_add(config.lease_renew_margin) {
                    return Ok(DirRef::Local(table));
                }
                // Extend (or same-holder re-acquire).
                match self.cluster.lease_bus().call(
                    port,
                    manager_node(dir, config.lease_managers),
                    LeaseRequest::Acquire {
                        client: self.id,
                        ino: dir,
                    },
                ) {
                    Ok(LeaseResponse::Granted {
                        expires_at,
                        must_load,
                        ..
                    }) => {
                        if must_load {
                            // Defensive: the manager believes our state is
                            // stale; rebuild.
                            let fresh = Metatable::load(
                                self.cluster.prt(),
                                port,
                                dir,
                                config.dentry_buckets,
                                config.lease_period,
                            )?;
                            let fresh = Arc::new(Mutex::new(fresh));
                            self.tables.lock().insert(dir, Arc::clone(&fresh));
                            self.leases.lock().insert(dir, expires_at);
                            return Ok(DirRef::Local(fresh));
                        }
                        self.leases.lock().insert(dir, expires_at);
                        return Ok(DirRef::Local(table));
                    }
                    Ok(LeaseResponse::Redirect { leader }) => {
                        // We lost the directory; discard stale state.
                        self.tables.lock().remove(&dir);
                        self.leases.lock().remove(&dir);
                        self.remote_hints.lock().insert(dir, leader);
                        return Ok(DirRef::Remote(leader));
                    }
                    Ok(LeaseResponse::Retry { until }) => {
                        port.wait_until(until);
                        continue;
                    }
                    Ok(LeaseResponse::Released) => unreachable!("release response to acquire"),
                    Err(NetError::Unreachable) => {
                        // Manager down but our lease may still be valid.
                        if expiry > now {
                            return Ok(DirRef::Local(table));
                        }
                        return Err(FsError::TimedOut);
                    }
                }
            }
            if let Some(leader) = self.remote_hints.lock().get(&dir).copied() {
                return Ok(DirRef::Remote(leader));
            }
            match self.cluster.lease_bus().call(
                port,
                manager_node(dir, config.lease_managers),
                LeaseRequest::Acquire {
                    client: self.id,
                    ino: dir,
                },
            ) {
                Ok(LeaseResponse::Granted { expires_at, .. }) => {
                    // Build the metatable; §III-C: load inode, check, pull
                    // dentries and child inodes. Metatable::load runs
                    // journal recovery first.
                    let table = match Metatable::load(
                        self.cluster.prt(),
                        port,
                        dir,
                        config.dentry_buckets,
                        config.lease_period,
                    ) {
                        Ok(t) => t,
                        Err(e) => {
                            let _ = self.cluster.lease_bus().call(
                                port,
                                manager_node(dir, config.lease_managers),
                                LeaseRequest::Release {
                                    client: self.id,
                                    ino: dir,
                                },
                            );
                            return Err(e);
                        }
                    };
                    let table = Arc::new(Mutex::new(table));
                    self.tables.lock().insert(dir, Arc::clone(&table));
                    self.leases.lock().insert(dir, expires_at);
                    return Ok(DirRef::Local(table));
                }
                Ok(LeaseResponse::Redirect { leader }) => {
                    self.remote_hints.lock().insert(dir, leader);
                    return Ok(DirRef::Remote(leader));
                }
                Ok(LeaseResponse::Retry { until }) => {
                    port.wait_until(until);
                    continue;
                }
                Ok(LeaseResponse::Released) => unreachable!("release response to acquire"),
                Err(NetError::Unreachable) => return Err(FsError::TimedOut),
            }
        }
        Err(FsError::TimedOut)
    }

    fn lease_valid(&self, dir: Ino, now: Nanos) -> bool {
        self.leases.lock().get(&dir).is_some_and(|&e| e > now)
    }

    /// Service entry point: leadership checks + dispatch.
    fn serve(&self, port: &Port, req: OpRequest) -> OpResponse {
        // Cache flushes are addressed to the client, not a directory.
        if let OpBody::FlushCache { file } = req.body {
            return self.serve_flush(port, file);
        }
        let dir = match target_dir(&req.body) {
            Some(d) => d,
            None => return OpResponse::Err(FsError::InvalidArgument),
        };
        let Some(table) = self.table(dir) else {
            return OpResponse::NotLeader;
        };
        if !self.lease_valid(dir, port.now()) {
            // Try a same-holder extension before turning the caller away.
            match self.cluster.lease_bus().call(
                port,
                manager_node(dir, self.cluster.config().lease_managers),
                LeaseRequest::Acquire {
                    client: self.id,
                    ino: dir,
                },
            ) {
                Ok(LeaseResponse::Granted {
                    expires_at,
                    must_load: false,
                    ..
                }) => {
                    self.leases.lock().insert(dir, expires_at);
                }
                _ => {
                    self.tables.lock().remove(&dir);
                    self.leases.lock().remove(&dir);
                    return OpResponse::NotLeader;
                }
            }
        }
        self.serve_local(port, &table, req)
    }

    /// Write back and drop our cached chunks of `file` (leader-initiated
    /// cache flush, §III-D). Also flips matching open handles to direct
    /// mode.
    fn serve_flush(&self, port: &Port, file: Ino) -> OpResponse {
        let dirty = self.cache.lock().take_dirty(file);
        let mut size = None;
        if !dirty.is_empty() {
            let items: Vec<(ObjectKey, Bytes)> = dirty
                .into_iter()
                .map(|(chunk, data)| (ObjectKey::data_chunk(file, chunk), Bytes::from(data)))
                .collect();
            for r in self.cluster.prt().store().put_many(port, items) {
                if let Err(e) = r {
                    return OpResponse::Err(crate::prt::map_os_err(e));
                }
            }
        }
        self.cache.lock().invalidate_file(file);
        for h in self.handles.lock().values_mut() {
            if h.ino == file {
                h.cached = false;
                size = Some(size.unwrap_or(0).max(h.size));
            }
        }
        OpResponse::Flushed { size }
    }

    /// Execute an operation as the leader of its directory. Runs both for
    /// forwarded RPCs and for the client's own local operations.
    fn serve_local(
        &self,
        port: &Port,
        table: &Arc<Mutex<Metatable>>,
        req: OpRequest,
    ) -> OpResponse {
        let OpRequest { creds, body } = req;
        let config = self.cluster.config();
        let prt = self.cluster.prt();
        let now = port.now();
        let mut t = table.lock();
        let dir_ino = t.ino();

        // Seal the running compound transaction when its buffering window
        // elapsed (§III-E). Forced commits (fsync semantics) are charged
        // to the caller; window-triggered commits are the commit threads'
        // work and run on a background timeline that does not stall the
        // application (the store still sees their load).
        let maybe_commit = |t: &mut Metatable, force: bool| -> FsResult<()> {
            if force {
                t.journal
                    .commit(prt, port, self.lane(dir_ino), config.spec.local_meta_op)?;
            } else if t.journal.commit_due(
                port.now(),
                config.journal_window,
                config.journal_max_entries,
            ) {
                let background = Port::starting_at(port.now());
                t.journal.commit(
                    prt,
                    &background,
                    self.lane(dir_ino),
                    config.spec.local_meta_op,
                )?;
            }
            Ok(())
        };

        let dir_perm = |t: &Metatable, want: u8| -> FsResult<()> {
            perm::check_access(&creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, want)
        };

        match body {
            OpBody::Lookup { name, .. } => {
                if let Err(e) = dir_perm(&t, AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t.lookup(&name) {
                    Some(entry) => OpResponse::Entry {
                        ino: entry.ino,
                        ftype: entry.ftype,
                        rec: t.child_inode(entry.ino).cloned(),
                    },
                    None => OpResponse::Err(FsError::NotFound),
                }
            }
            OpBody::DirInode { .. } => OpResponse::Inode(t.dir.clone()),
            OpBody::Create { name, rec, .. } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t
                    .create_child(rec, &name, now)
                    .and_then(|()| maybe_commit(&mut t, false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::AddSubdir { name, child, .. } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                match t
                    .add_subdir(&name, child, now)
                    .and_then(|()| maybe_commit(&mut t, false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::Unlink { name, .. } => {
                let victim_uid = match t.lookup(&name) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t.unlink_child(&name, now) {
                    Ok(rec) => match maybe_commit(&mut t, false) {
                        Ok(()) => OpResponse::Inode(rec),
                        Err(e) => OpResponse::Err(e),
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RemoveSubdir { name, .. } => {
                let child_ino = match t.lookup(&name) {
                    Some(e) if e.ftype == FileType::Directory => e.ino,
                    Some(_) => return OpResponse::Err(FsError::NotADirectory),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                let victim_uid = prt
                    .load_inode(port, child_ino)
                    .map(|r| r.uid)
                    .unwrap_or(t.dir.uid);
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t
                    .remove_subdir(&name, now)
                    .and_then(|_| maybe_commit(&mut t, false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::Readdir { .. } => {
                if let Err(e) = dir_perm(&t, AM_READ) {
                    return OpResponse::Err(e);
                }
                OpResponse::Entries(t.readdir())
            }
            OpBody::SetSize { ino, size, .. } => {
                if let Some(rec) = t.child_inode(ino) {
                    if let Err(e) =
                        perm::check_access(&creds, rec.uid, rec.gid, rec.mode, &rec.acl, AM_WRITE)
                    {
                        return OpResponse::Err(e);
                    }
                }
                // fsync semantics: the size update must be durable.
                match t
                    .set_child_size(ino, size, now)
                    .and_then(|()| maybe_commit(&mut t, true))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAttrChild { ino, attr, .. } => {
                let owner = match t.child_inode(ino) {
                    Some(rec) => rec.uid,
                    None => return OpResponse::Err(FsError::Stale),
                };
                let changing_owner = attr.uid.is_some() || attr.gid.is_some();
                if let Err(e) = perm::check_setattr(&creds, owner, changing_owner) {
                    return OpResponse::Err(e);
                }
                match t.set_child_attr(ino, &attr, now) {
                    Ok(rec) => match maybe_commit(&mut t, false) {
                        Ok(()) => OpResponse::Inode(rec),
                        Err(e) => OpResponse::Err(e),
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAttrDir { attr, .. } => {
                let changing_owner = attr.uid.is_some() || attr.gid.is_some();
                if let Err(e) = perm::check_setattr(&creds, t.dir.uid, changing_owner) {
                    return OpResponse::Err(e);
                }
                let rec = t.set_dir_attr(&attr, now);
                match maybe_commit(&mut t, false) {
                    Ok(()) => OpResponse::Inode(rec),
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::SetAcl { target, acl, .. } => {
                let owner = if target == t.ino() {
                    t.dir.uid
                } else {
                    match t.child_inode(target) {
                        Some(rec) => rec.uid,
                        None => return OpResponse::Err(FsError::Stale),
                    }
                };
                if let Err(e) = perm::check_setattr(&creds, owner, false) {
                    return OpResponse::Err(e);
                }
                match t
                    .set_acl(target, acl, now)
                    .and_then(|()| maybe_commit(&mut t, false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameLocal { from, to, .. } => {
                let victim_uid = match t.lookup(&from) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                match t
                    .rename_local(&from, &to, now)
                    .and_then(|()| maybe_commit(&mut t, false))
                {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameSrcPrepare {
                name, txid, peer, ..
            } => {
                let victim_uid = match t.lookup(&name) {
                    Some(entry) => t.child_inode(entry.ino).map(|r| r.uid).unwrap_or(t.dir.uid),
                    None => return OpResponse::Err(FsError::NotFound),
                };
                if let Err(e) = perm::check_delete(
                    &creds, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, victim_uid,
                ) {
                    return OpResponse::Err(e);
                }
                t.journal.append(
                    crate::journal::JournalOp::RenamePrepare {
                        txid,
                        peer_dir: peer,
                        ops: vec![crate::journal::JournalOp::RemoveDentry { name: name.clone() }],
                    },
                    now,
                );
                let (entry, rec) = match t.detach_child(&name, now) {
                    Ok(v) => v,
                    Err(e) => return OpResponse::Err(e),
                };
                match maybe_commit(&mut t, true) {
                    Ok(()) => OpResponse::Detached {
                        ino: entry.ino,
                        ftype: entry.ftype,
                        rec,
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameDstPrepare {
                name,
                txid,
                peer,
                ino,
                ftype,
                rec,
                ..
            } => {
                if let Err(e) = dir_perm(&t, AM_WRITE | AM_EXEC) {
                    return OpResponse::Err(e);
                }
                // POSIX rename replaces an existing file target; the
                // victim's removal rides inside the 2PC prepare so it is
                // atomic with the move. Directory targets are rejected
                // (cross-directory directory replacement is out of scope).
                let existing = t.lookup(&name).map(|e| (e.name.clone(), e.ftype));
                let victim = match existing {
                    Some((_, FileType::Directory)) => {
                        return OpResponse::Err(FsError::AlreadyExists);
                    }
                    Some((victim_name, _)) => match t.unlink_child(&victim_name, now) {
                        Ok(rec) => Some(rec),
                        Err(e) => return OpResponse::Err(e),
                    },
                    None => None,
                };
                let mut ops = vec![crate::journal::JournalOp::UpsertDentry {
                    name: name.clone(),
                    ino,
                    ftype,
                }];
                if let Some(rec) = &rec {
                    ops.push(crate::journal::JournalOp::PutInode(rec.clone()));
                }
                t.journal.append(
                    crate::journal::JournalOp::RenamePrepare {
                        txid,
                        peer_dir: peer,
                        ops,
                    },
                    now,
                );
                if let Err(e) = t.attach_child(&name, ino, ftype, rec, now) {
                    return OpResponse::Err(e);
                }
                match maybe_commit(&mut t, true) {
                    Ok(()) => match victim {
                        Some(rec) => OpResponse::Inode(rec),
                        None => OpResponse::Ok,
                    },
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::RenameDecide {
                txid, commit, undo, ..
            } => {
                if commit {
                    t.journal
                        .append(crate::journal::JournalOp::RenameCommit { txid }, now);
                } else {
                    t.journal
                        .append(crate::journal::JournalOp::RenameAbort { txid }, now);
                    if let Some((name, ino, ftype, rec)) = undo {
                        if let Err(e) = t.attach_child(&name, ino, ftype, rec, now) {
                            return OpResponse::Err(e);
                        }
                    }
                }
                match maybe_commit(&mut t, true) {
                    Ok(()) => OpResponse::Ok,
                    Err(e) => OpResponse::Err(e),
                }
            }
            OpBody::AcquireReadLease { file, client, .. } => {
                let decision = t.file_leases.acquire_read(client, file, now);
                self.broadcast_flushes(port, &mut t, file, &decision);
                OpResponse::Lease(decision)
            }
            OpBody::AcquireWriteLease { file, client, .. } => {
                let decision = t.file_leases.acquire_write(client, file, now);
                self.broadcast_flushes(port, &mut t, file, &decision);
                OpResponse::Lease(decision)
            }
            OpBody::ReleaseFileLease { file, client, .. } => {
                t.file_leases.release(client, file, now);
                OpResponse::Ok
            }
            OpBody::FlushCache { .. } => unreachable!("handled in serve()"),
        }
    }

    /// On a lease conflict the leader "broadcasts cache flushing requests
    /// to prevent stale cache entries on other clients' object cache"
    /// (§III-D). Flushed sizes feed back into the child's inode.
    fn broadcast_flushes(
        &self,
        port: &Port,
        t: &mut Metatable,
        file: Ino,
        decision: &FileLeaseDecision,
    ) {
        let FileLeaseDecision::Direct { flush, .. } = decision else {
            return;
        };
        let now = port.now();
        for &target in flush {
            if target == self.id {
                // Flush our own cache inline.
                if let OpResponse::Flushed { size: Some(size) } = self.serve_flush(port, file) {
                    let _ = t.set_child_size(file, size, now);
                }
                continue;
            }
            // Crashed holders simply drain via lease expiry.
            if let Ok(OpResponse::Flushed { size: Some(size) }) = self.cluster.ops_bus().call(
                port,
                target,
                OpRequest {
                    creds: Credentials::root(),
                    body: OpBody::FlushCache { file },
                },
            ) {
                let current = t.child_inode(file).map(|r| r.size).unwrap_or(0);
                if size > current {
                    let _ = t.set_child_size(file, size, now);
                }
            }
        }
    }
}

/// The directory an operation must be served by.
fn target_dir(body: &OpBody) -> Option<Ino> {
    Some(match body {
        OpBody::Lookup { dir, .. }
        | OpBody::DirInode { dir }
        | OpBody::Create { dir, .. }
        | OpBody::AddSubdir { dir, .. }
        | OpBody::Unlink { dir, .. }
        | OpBody::RemoveSubdir { dir, .. }
        | OpBody::Readdir { dir }
        | OpBody::SetSize { dir, .. }
        | OpBody::SetAttrChild { dir, .. }
        | OpBody::SetAttrDir { dir, .. }
        | OpBody::SetAcl { dir, .. }
        | OpBody::RenameLocal { dir, .. }
        | OpBody::RenameSrcPrepare { dir, .. }
        | OpBody::RenameDstPrepare { dir, .. }
        | OpBody::RenameDecide { dir, .. }
        | OpBody::AcquireReadLease { dir, .. }
        | OpBody::AcquireWriteLease { dir, .. }
        | OpBody::ReleaseFileLease { dir, .. } => *dir,
        OpBody::FlushCache { .. } => return None,
    })
}

impl ArkClient {
    /// Resolve (parent, name) → the child's inode record, through the
    /// appropriate leader.
    fn lookup_record(
        &self,
        ctx: &Credentials,
        dir: Ino,
        name: &str,
    ) -> FsResult<(Ino, InodeRecord)> {
        match self.dir_ref(dir)? {
            DirRef::Local(table) => {
                self.port.advance(self.config().spec.local_meta_op);
                let t = table.lock();
                perm::check_access(ctx, t.dir.uid, t.dir.gid, t.dir.mode, &t.dir.acl, AM_EXEC)?;
                let entry = t.lookup(name).ok_or(FsError::NotFound)?;
                if entry.ftype == FileType::Directory {
                    let ino = entry.ino;
                    drop(t);
                    Ok((ino, self.dir_inode(ino)?))
                } else {
                    let rec = t
                        .child_inode(entry.ino)
                        .cloned()
                        .ok_or_else(|| FsError::Io("dangling dentry".into()))?;
                    Ok((entry.ino, rec))
                }
            }
            DirRef::Remote(leader) => {
                let resp = self.remote_call(
                    ctx,
                    dir,
                    leader,
                    OpBody::Lookup {
                        dir,
                        name: name.to_string(),
                    },
                )?;
                match resp {
                    OpResponse::Entry {
                        ino,
                        rec: Some(rec),
                        ..
                    } => Ok((ino, rec)),
                    OpResponse::Entry { ino, rec: None, .. } => Ok((ino, self.dir_inode(ino)?)),
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected lookup response".into())),
                }
            }
        }
    }

    fn open_inner(
        &self,
        ctx: &Credentials,
        path: &str,
        flags: OpenFlags,
        depth: usize,
    ) -> FsResult<FileHandle> {
        if depth > 8 {
            return Err(FsError::InvalidArgument); // ELOOP
        }
        let (parent, name) = self.resolve_parent(ctx, path)?;
        let (ino, rec) = self.lookup_record(ctx, parent, name)?;
        match rec.ftype {
            FileType::Directory => return Err(FsError::IsADirectory),
            FileType::Symlink => {
                let target = rec.symlink_target.clone();
                return self.open_inner(ctx, &target, flags, depth + 1);
            }
            FileType::Regular => {}
        }
        let mut want = 0u8;
        if flags.readable() {
            want |= AM_READ;
        }
        if flags.writable() {
            want |= AM_WRITE;
        }
        perm::check_access(ctx, rec.uid, rec.gid, rec.mode, &rec.acl, want)?;
        let mut size = rec.size;
        if flags.is_trunc() && flags.writable() && size > 0 {
            self.push_size(ctx, parent, ino, 0)?;
            self.prt().truncate_data(&self.port, ino, size, 0)?;
            self.state.cache.lock().truncate_file(ino, 0);
            size = 0;
        }
        let cached = self.file_lease_read(parent, ino)?;
        let id = self.state.next_handle.fetch_add(1, Ordering::Relaxed);
        self.state.handles.lock().insert(
            id,
            OpenFile {
                ino,
                parent,
                flags,
                size,
                cached,
                wrote: false,
                ra_window: 0,
                last_pos: 0,
            },
        );
        Ok(FileHandle(id))
    }

    /// Snapshot of an open handle's fields used by read/write.
    fn handle_view(&self, fh: FileHandle) -> FsResult<(Ino, Ino, OpenFlags, u64, bool)> {
        let handles = self.state.handles.lock();
        let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
        Ok((h.ino, h.parent, h.flags, h.size, h.cached))
    }

    /// Fetch the chunks needed for a cached read, including the
    /// read-ahead window, in one pipelined multi-GET.
    fn fill_cache_for_read(
        &self,
        ino: Ino,
        offset: u64,
        want: usize,
        ra_window: u64,
        size: u64,
    ) -> FsResult<()> {
        let chunk_size = self.config().chunk_size;
        let first = offset / chunk_size;
        let read_end = (offset + want as u64).min(size);
        let ra_end = read_end.saturating_add(ra_window).min(size);
        let last = ra_end.div_ceil(chunk_size).max(first + 1);
        let missing: Vec<u64> = {
            let cache = self.state.cache.lock();
            (first..last).filter(|&c| !cache.contains(ino, c)).collect()
        };
        if missing.is_empty() {
            return Ok(());
        }
        let miss_start = self.port.now();
        // Chunks the request itself touches are fetched synchronously;
        // everything further out is the read-ahead window, fetched
        // *asynchronously* ("the file data belonging to the window is
        // asynchronously read in advance", §III-D): it still loads the
        // store, but the application only waits if it touches a chunk
        // before its completion.
        let last_needed = (offset + want as u64 - 1) / chunk_size;
        let keys: Vec<ObjectKey> = missing
            .iter()
            .map(|&c| ObjectKey::data_chunk(ino, c))
            .collect();
        let depart = self.port.now() + self.config().spec.net_half_rtt;
        let results = self.prt().store().get_each(depart, &keys);
        let mut evicted = Vec::new();
        let mut needed_done = self.port.now();
        {
            // Insert in reverse so the chunk about to be read carries the
            // freshest LRU tick and is not displaced by its own
            // read-ahead companions.
            let mut cache = self.state.cache.lock();
            for (&chunk, result) in missing.iter().zip(results).rev() {
                let chunk_start = chunk * chunk_size;
                let logical_len = (size - chunk_start).min(chunk_size) as usize;
                let (data, ready_at) = match result {
                    Ok((bytes, completion)) => {
                        let mut v = bytes.to_vec();
                        if v.len() < logical_len {
                            v.resize(logical_len, 0); // sparse tail
                        }
                        (v, completion)
                    }
                    Err(arkfs_objstore::OsError::NotFound) => (vec![0u8; logical_len], depart),
                    Err(e) => return Err(crate::prt::map_os_err(e)),
                };
                if chunk <= last_needed {
                    needed_done = needed_done.max(ready_at);
                    evicted.extend(cache.insert_clean(ino, chunk, data));
                } else {
                    evicted.extend(cache.insert_prefetched(ino, chunk, data, ready_at));
                }
            }
        }
        self.port.wait_until(needed_done);
        let tracer = &self.state.telemetry.tracer;
        if tracer.enabled() {
            tracer.record(
                PID_CLIENT,
                self.state.id.0,
                "cache.miss",
                "cache",
                miss_start,
                self.port.now(),
            );
        }
        self.write_back(evicted)
    }
}

impl Vfs for ArkClient {
    fn mkdir(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<Stat> {
        self.traced("op.mkdir", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            vpath::validate_name(name)?;
            let ino = self.fresh_ino();
            let rec = InodeRecord::new(
                ino,
                FileType::Directory,
                mode,
                ctx.uid,
                ctx.gid,
                self.port.now(),
            );
            // The child directory's inode object is written eagerly so its
            // first leader can load it (the dentry itself is journaled).
            self.prt().store_inode(&self.port, &rec)?;
            match self.on_dir(
                ctx,
                parent,
                OpBody::AddSubdir {
                    dir: parent,
                    name: name.to_string(),
                    child: ino,
                },
            )? {
                OpResponse::Ok => {
                    if self.config().permission_cache {
                        self.pcache_note(parent, name, Some((ino, FileType::Directory)));
                    }
                    Ok(rec.to_stat())
                }
                OpResponse::Err(e) => {
                    let _ = self.prt().delete_inode(&self.port, ino);
                    Err(e)
                }
                _ => Err(FsError::Io("unexpected mkdir response".into())),
            }
        })
    }

    fn rmdir(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.traced("op.rmdir", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            let (child, ftype) = self.lookup_step(ctx, parent, name)?;
            if ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            if child == ROOT_INO {
                return Err(FsError::InvalidArgument);
            }
            // Become the child's leader to guarantee a stable emptiness check.
            match self.dir_ref(child)? {
                DirRef::Local(table) => {
                    let mut t = table.lock();
                    if !t.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                    let lane = self.state.lane(child);
                    t.flush(
                        self.prt(),
                        &self.port,
                        lane,
                        self.config().spec.local_meta_op,
                    )?;
                }
                DirRef::Remote(_) => return Err(FsError::Busy),
            }
            match self.on_dir(
                ctx,
                parent,
                OpBody::RemoveSubdir {
                    dir: parent,
                    name: name.to_string(),
                },
            )? {
                OpResponse::Ok => {}
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected rmdir response".into())),
            }
            // Drop leadership and delete the directory's objects.
            self.state.tables.lock().remove(&child);
            self.state.leases.lock().remove(&child);
            let _ = self.state.cluster.lease_bus().call(
                &self.port,
                manager_node(child, self.config().lease_managers),
                LeaseRequest::Release {
                    client: self.state.id,
                    ino: child,
                },
            );
            self.prt().delete_buckets(&self.port, child)?;
            self.prt().delete_inode(&self.port, child)?;
            self.pcache_forget(child);
            if self.config().permission_cache {
                self.pcache_note(parent, name, None);
            }
            Ok(())
        })
    }

    fn create(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<FileHandle> {
        self.traced("op.create", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            vpath::validate_name(name)?;
            let ino = self.fresh_ino();
            let rec = InodeRecord::new(
                ino,
                FileType::Regular,
                mode,
                ctx.uid,
                ctx.gid,
                self.port.now(),
            );
            match self.on_dir(
                ctx,
                parent,
                OpBody::Create {
                    dir: parent,
                    name: name.to_string(),
                    rec,
                },
            )? {
                OpResponse::Ok => {}
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected create response".into())),
            }
            if self.config().permission_cache {
                self.pcache_note(parent, name, Some((ino, FileType::Regular)));
            }
            let cached = self.file_lease_read(parent, ino)?;
            let id = self.state.next_handle.fetch_add(1, Ordering::Relaxed);
            self.state.handles.lock().insert(
                id,
                OpenFile {
                    ino,
                    parent,
                    flags: OpenFlags::RDWR,
                    size: 0,
                    cached,
                    wrote: false,
                    ra_window: 0,
                    last_pos: 0,
                },
            );
            Ok(FileHandle(id))
        })
    }

    fn open(&self, ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle> {
        self.traced("op.open", || self.open_inner(ctx, path, flags, 0))
    }

    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.traced("op.close", || {
            self.fsync(ctx, fh)?;
            let h = self
                .state
                .handles
                .lock()
                .remove(&fh.0)
                .ok_or(FsError::BadHandle)?;
            self.release_file_lease(h.parent, h.ino);
            Ok(())
        })
    }

    fn read(
        &self,
        ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        self.traced("op.read", || {
            let _ = ctx;
            self.fuse_charge(1);
            let (ino, _parent, flags, size, cached) = self.handle_view(fh)?;
            if !flags.readable() {
                return Err(FsError::BadAccessMode);
            }
            if buf.is_empty() || offset >= size {
                return Ok(0);
            }
            let want = (buf.len() as u64).min(size - offset) as usize;
            if !cached {
                let n = self
                    .prt()
                    .read_data(&self.port, ino, offset, &mut buf[..want], size)?;
                let mut handles = self.state.handles.lock();
                if let Some(h) = handles.get_mut(&fh.0) {
                    h.last_pos = offset + n as u64;
                }
                return Ok(n);
            }

            // Read-ahead window update (§III-D): double on sequential access,
            // jump to max when the read starts at offset 0.
            let config = self.config();
            let ra_window = {
                let mut handles = self.state.handles.lock();
                let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
                if offset == 0 && config.readahead_full_at_zero {
                    h.ra_window = config.max_readahead;
                } else if offset == h.last_pos && offset != 0 {
                    h.ra_window =
                        (h.ra_window.max(config.chunk_size) * 2).min(config.max_readahead);
                } else if offset != h.last_pos {
                    h.ra_window = 0;
                }
                h.ra_window
            };
            self.fill_cache_for_read(ino, offset, want, ra_window, size)?;

            // Copy out of the cache; a chunk evicted between fill and copy is
            // re-read straight from the store.
            let chunk_size = config.chunk_size;
            let mut filled = 0usize;
            while filled < want {
                let pos = offset + filled as u64;
                let chunk = pos / chunk_size;
                let within = (pos % chunk_size) as usize;
                let n = ((chunk_size as usize) - within).min(want - filled);
                let hit = {
                    let mut cache = self.state.cache.lock();
                    match cache.get_ready(ino, chunk) {
                        Some((data, ready_at)) => {
                            let out = &mut buf[filled..filled + n];
                            let avail = data.len().saturating_sub(within);
                            let take = avail.min(n);
                            out[..take].copy_from_slice(&data[within..within + take]);
                            out[take..].fill(0);
                            Some(ready_at)
                        }
                        None => None,
                    }
                };
                let hit = match hit {
                    Some(ready_at) => {
                        // Touched a chunk whose asynchronous prefetch has not
                        // completed yet: wait for it.
                        self.port.wait_until(ready_at);
                        true
                    }
                    None => false,
                };
                if !hit {
                    self.prt().read_data(
                        &self.port,
                        ino,
                        pos,
                        &mut buf[filled..filled + n],
                        size,
                    )?;
                }
                filled += n;
            }
            self.port.advance(config.spec.local_meta_op);
            let mut handles = self.state.handles.lock();
            if let Some(h) = handles.get_mut(&fh.0) {
                h.last_pos = offset + filled as u64;
            }
            Ok(filled)
        })
    }

    fn write(
        &self,
        ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        self.traced("op.write", || {
            let _ = ctx;
            self.fuse_charge(1);
            let (ino, parent, flags, size, _) = self.handle_view(fh)?;
            if !flags.writable() {
                return Err(FsError::BadAccessMode);
            }
            if data.is_empty() {
                return Ok(0);
            }
            let offset = if flags.is_append() { size } else { offset };

            // First write upgrades the read lease (§III-D).
            let (cached, first_write) = {
                let handles = self.state.handles.lock();
                let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
                (h.cached, !h.wrote)
            };
            let cached = if first_write {
                let granted = self.file_lease_write(parent, ino)?;
                let mut handles = self.state.handles.lock();
                let h = handles.get_mut(&fh.0).ok_or(FsError::BadHandle)?;
                h.cached = h.cached && granted;
                h.wrote = true;
                h.cached
            } else {
                cached
            };

            if cached {
                let chunk_size = self.config().chunk_size;
                // Split the write into per-chunk pieces up front.
                let mut pieces: Vec<(u64, usize, &[u8])> = Vec::new();
                let mut written = 0usize;
                while written < data.len() {
                    let pos = offset + written as u64;
                    let chunk = pos / chunk_size;
                    let within = (pos % chunk_size) as usize;
                    let n = (chunk_size as usize - within).min(data.len() - written);
                    pieces.push((chunk, within, &data[written..written + n]));
                    written += n;
                }
                // Partial overwrites of store-resident chunks need the old
                // bytes in cache first (read-modify in cache); fetch every
                // missing one in a single pipelined multi-GET.
                let need_fill: Vec<u64> = {
                    let cache = self.state.cache.lock();
                    pieces
                        .iter()
                        .filter(|&&(chunk, within, piece)| {
                            let covers_whole = within == 0 && piece.len() == chunk_size as usize;
                            !covers_whole
                                && chunk * chunk_size < size
                                && !cache.contains(ino, chunk)
                        })
                        .map(|&(chunk, ..)| chunk)
                        .collect()
                };
                let mut fills = HashMap::new();
                if !need_fill.is_empty() {
                    let keys: Vec<ObjectKey> = need_fill
                        .iter()
                        .map(|&c| ObjectKey::data_chunk(ino, c))
                        .collect();
                    let results = self.prt().store().get_many(&self.port, &keys);
                    for (&chunk, result) in need_fill.iter().zip(results) {
                        match result {
                            Ok(bytes) => {
                                fills.insert(chunk, bytes.to_vec());
                            }
                            Err(arkfs_objstore::OsError::NotFound) => {}
                            Err(e) => return Err(crate::prt::map_os_err(e)),
                        }
                    }
                }
                // One cache pass for the whole span; dirty evictions from the
                // entire call flush as a single write-back batch.
                let evicted = self.state.cache.lock().write_many(ino, fills, &pieces);
                self.write_back(evicted)?;
                self.port.advance(self.config().spec.local_meta_op);
            } else {
                self.prt().write_data(&self.port, ino, offset, data)?;
            }
            let mut handles = self.state.handles.lock();
            if let Some(h) = handles.get_mut(&fh.0) {
                h.size = h.size.max(offset + data.len() as u64);
            }
            Ok(data.len())
        })
    }

    fn fsync(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()> {
        self.traced("op.fsync", || {
            self.fuse_charge(1);
            let (ino, parent, size, wrote) = {
                let handles = self.state.handles.lock();
                let h = handles.get(&fh.0).ok_or(FsError::BadHandle)?;
                (h.ino, h.parent, h.size, h.wrote)
            };
            self.flush_file_data(ino)?;
            if wrote {
                self.push_size(ctx, parent, ino, size)?;
                let mut handles = self.state.handles.lock();
                if let Some(h) = handles.get_mut(&fh.0) {
                    h.wrote = false;
                }
            }
            Ok(())
        })
    }

    fn stat(&self, ctx: &Credentials, path: &str) -> FsResult<Stat> {
        self.traced("op.stat", || {
            let (ino, rec) = self.resolve_record(ctx, path)?;
            let mut st = rec.to_stat();
            // Reads-own-writes: unflushed writes are visible to this client.
            for h in self.state.handles.lock().values() {
                if h.ino == ino {
                    st.size = st.size.max(h.size);
                }
            }
            Ok(st)
        })
    }

    fn readdir(&self, ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>> {
        self.traced("op.readdir", || {
            let (ino, ftype) = self.resolve(ctx, path)?;
            if ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            match self.on_dir(ctx, ino, OpBody::Readdir { dir: ino })? {
                OpResponse::Entries(entries) => Ok(entries),
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected readdir response".into())),
            }
        })
    }

    fn unlink(&self, ctx: &Credentials, path: &str) -> FsResult<()> {
        self.traced("op.unlink", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            match self.on_dir(
                ctx,
                parent,
                OpBody::Unlink {
                    dir: parent,
                    name: name.to_string(),
                },
            )? {
                OpResponse::Inode(rec) => {
                    self.state.cache.lock().invalidate_file(rec.ino);
                    self.prt().delete_data(&self.port, rec.ino, rec.size)?;
                    if self.config().permission_cache {
                        self.pcache_note(parent, name, None);
                    }
                    Ok(())
                }
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected unlink response".into())),
            }
        })
    }

    fn rename(&self, ctx: &Credentials, from: &str, to: &str) -> FsResult<()> {
        self.traced("op.rename", || {
            let from_comps = vpath::components(from)?;
            let to_comps = vpath::components(to)?;
            if from_comps == to_comps {
                return Ok(());
            }
            if from_comps.is_empty() || to_comps.is_empty() {
                return Err(FsError::InvalidArgument);
            }
            if vpath::is_prefix_of(&from_comps, &to_comps) {
                return Err(FsError::InvalidArgument); // moving into own subtree
            }
            let (src_dir, src_name) = self.resolve_parent(ctx, from)?;
            let (dst_dir, dst_name) = self.resolve_parent(ctx, to)?;

            if src_dir == dst_dir {
                // Existing directory target must be empty and is removed
                // first (POSIX replace).
                if let Ok((tino, tft)) = self.lookup_step(ctx, src_dir, dst_name) {
                    if tft == FileType::Directory {
                        let (_, sft) = self.lookup_step(ctx, src_dir, src_name)?;
                        if sft != FileType::Directory {
                            return Err(FsError::IsADirectory);
                        }
                        match self.dir_ref(tino)? {
                            DirRef::Local(table) => {
                                if !table.lock().is_empty() {
                                    return Err(FsError::NotEmpty);
                                }
                            }
                            DirRef::Remote(_) => return Err(FsError::Busy),
                        }
                        self.rmdir(ctx, to)?;
                    }
                }
                return match self.on_dir(
                    ctx,
                    src_dir,
                    OpBody::RenameLocal {
                        dir: src_dir,
                        from: src_name.to_string(),
                        to: dst_name.to_string(),
                    },
                )? {
                    OpResponse::Ok => {
                        if self.config().permission_cache {
                            self.pcache_note(src_dir, src_name, None);
                        }
                        Ok(())
                    }
                    OpResponse::Err(e) => Err(e),
                    _ => Err(FsError::Io("unexpected rename response".into())),
                };
            }

            // Cross-directory rename: two-phase commit across both journals
            // (§III-E, [18]). An existing file target is replaced atomically
            // inside the destination's prepare; a directory target is
            // rejected.
            let txid: u128 = self.state.rng.lock().random();
            let (ino, ftype, rec) = match self.on_dir(
                ctx,
                src_dir,
                OpBody::RenameSrcPrepare {
                    dir: src_dir,
                    name: src_name.to_string(),
                    txid,
                    peer: dst_dir,
                },
            )? {
                OpResponse::Detached { ino, ftype, rec } => (ino, ftype, rec),
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected rename-src response".into())),
            };
            let dst_result = self.on_dir(
                ctx,
                dst_dir,
                OpBody::RenameDstPrepare {
                    dir: dst_dir,
                    name: dst_name.to_string(),
                    txid,
                    peer: src_dir,
                    ino,
                    ftype,
                    rec: rec.clone(),
                },
            )?;
            match dst_result {
                OpResponse::Ok => {}
                OpResponse::Inode(victim) => {
                    // The destination replaced an existing file; its data
                    // chunks are ours to reclaim.
                    self.state.cache.lock().invalidate_file(victim.ino);
                    self.prt()
                        .delete_data(&self.port, victim.ino, victim.size)?;
                }
                OpResponse::Err(e) => {
                    // Abort: undo the source detach.
                    let _ = self.on_dir(
                        ctx,
                        src_dir,
                        OpBody::RenameDecide {
                            dir: src_dir,
                            txid,
                            commit: false,
                            undo: Some((src_name.to_string(), ino, ftype, rec)),
                        },
                    );
                    return Err(e);
                }
                _ => return Err(FsError::Io("unexpected rename-dst response".into())),
            }
            for dir in [src_dir, dst_dir] {
                match self.on_dir(
                    ctx,
                    dir,
                    OpBody::RenameDecide {
                        dir,
                        txid,
                        commit: true,
                        undo: None,
                    },
                )? {
                    OpResponse::Ok => {}
                    OpResponse::Err(e) => return Err(e),
                    _ => return Err(FsError::Io("unexpected rename-decide response".into())),
                }
            }
            if self.config().permission_cache {
                self.pcache_note(src_dir, src_name, None);
                self.pcache_note(dst_dir, dst_name, Some((ino, ftype)));
            }
            Ok(())
        })
    }

    fn truncate(&self, ctx: &Credentials, path: &str, size: u64) -> FsResult<()> {
        self.traced("op.truncate", || {
            if vpath::components(path)?.is_empty() {
                return Err(FsError::IsADirectory);
            }
            let (parent, name) = self.resolve_parent(ctx, path)?;
            let (ino, rec) = self.lookup_record(ctx, parent, name)?;
            if rec.ftype == FileType::Directory {
                return Err(FsError::IsADirectory);
            }
            perm::check_access(ctx, rec.uid, rec.gid, rec.mode, &rec.acl, AM_WRITE)?;
            match self.on_dir(
                ctx,
                parent,
                OpBody::SetSize {
                    dir: parent,
                    ino,
                    size,
                },
            )? {
                OpResponse::Ok => {}
                OpResponse::Err(e) => return Err(e),
                _ => return Err(FsError::Io("unexpected truncate response".into())),
            }
            if size < rec.size {
                // Flush surviving dirty data, then drop all cached chunks:
                // the boundary chunk's cached copy is stale after the store
                // trims it.
                self.flush_file_data(ino)?;
                self.state.cache.lock().invalidate_file(ino);
                self.prt().truncate_data(&self.port, ino, rec.size, size)?;
            }
            let mut handles = self.state.handles.lock();
            for h in handles.values_mut() {
                if h.ino == ino {
                    h.size = size;
                }
            }
            Ok(())
        })
    }

    fn setattr(&self, ctx: &Credentials, path: &str, attr: &SetAttr) -> FsResult<Stat> {
        self.traced("op.setattr", || {
            let comps = vpath::components(path)?;
            let resp = if comps.is_empty() {
                self.fuse_charge(1);
                self.on_dir(
                    ctx,
                    ROOT_INO,
                    OpBody::SetAttrDir {
                        dir: ROOT_INO,
                        attr: attr.clone(),
                    },
                )?
            } else {
                let (parent, name) = self.resolve_parent(ctx, path)?;
                let (ino, ftype) = self.lookup_step(ctx, parent, name)?;
                if ftype == FileType::Directory {
                    self.pcache_forget(ino);
                    self.on_dir(
                        ctx,
                        ino,
                        OpBody::SetAttrDir {
                            dir: ino,
                            attr: attr.clone(),
                        },
                    )?
                } else {
                    self.on_dir(
                        ctx,
                        parent,
                        OpBody::SetAttrChild {
                            dir: parent,
                            ino,
                            attr: attr.clone(),
                        },
                    )?
                }
            };
            match resp {
                OpResponse::Inode(rec) => Ok(rec.to_stat()),
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected setattr response".into())),
            }
        })
    }

    fn symlink(&self, ctx: &Credentials, path: &str, target: &str) -> FsResult<Stat> {
        self.traced("op.symlink", || {
            let (parent, name) = self.resolve_parent(ctx, path)?;
            vpath::validate_name(name)?;
            let ino = self.fresh_ino();
            let mut rec = InodeRecord::new(
                ino,
                FileType::Symlink,
                0o777,
                ctx.uid,
                ctx.gid,
                self.port.now(),
            );
            rec.symlink_target = target.to_string();
            rec.size = target.len() as u64;
            let stat = rec.to_stat();
            match self.on_dir(
                ctx,
                parent,
                OpBody::Create {
                    dir: parent,
                    name: name.to_string(),
                    rec,
                },
            )? {
                OpResponse::Ok => {
                    if self.config().permission_cache {
                        self.pcache_note(parent, name, Some((ino, FileType::Symlink)));
                    }
                    Ok(stat)
                }
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected symlink response".into())),
            }
        })
    }

    fn readlink(&self, ctx: &Credentials, path: &str) -> FsResult<String> {
        self.traced("op.readlink", || {
            let (_, rec) = self.resolve_record(ctx, path)?;
            if rec.ftype != FileType::Symlink {
                return Err(FsError::InvalidArgument);
            }
            Ok(rec.symlink_target)
        })
    }

    fn set_acl(&self, ctx: &Credentials, path: &str, acl: &Acl) -> FsResult<()> {
        self.traced("op.set_acl", || {
            let comps = vpath::components(path)?;
            let resp = if comps.is_empty() {
                self.fuse_charge(1);
                self.on_dir(
                    ctx,
                    ROOT_INO,
                    OpBody::SetAcl {
                        dir: ROOT_INO,
                        target: ROOT_INO,
                        acl: acl.clone(),
                    },
                )?
            } else {
                let (parent, name) = self.resolve_parent(ctx, path)?;
                let (ino, ftype) = self.lookup_step(ctx, parent, name)?;
                if ftype == FileType::Directory {
                    self.pcache_forget(ino);
                    self.on_dir(
                        ctx,
                        ino,
                        OpBody::SetAcl {
                            dir: ino,
                            target: ino,
                            acl: acl.clone(),
                        },
                    )?
                } else {
                    self.on_dir(
                        ctx,
                        parent,
                        OpBody::SetAcl {
                            dir: parent,
                            target: ino,
                            acl: acl.clone(),
                        },
                    )?
                }
            };
            match resp {
                OpResponse::Ok => Ok(()),
                OpResponse::Err(e) => Err(e),
                _ => Err(FsError::Io("unexpected set_acl response".into())),
            }
        })
    }

    fn get_acl(&self, ctx: &Credentials, path: &str) -> FsResult<Acl> {
        self.traced("op.get_acl", || {
            let (_, rec) = self.resolve_record(ctx, path)?;
            Ok(rec.acl)
        })
    }

    fn access(&self, ctx: &Credentials, path: &str, mode: u8) -> FsResult<()> {
        self.traced("op.access", || {
            let (_, rec) = self.resolve_record(ctx, path)?;
            perm::check_access(ctx, rec.uid, rec.gid, rec.mode, &rec.acl, mode)
        })
    }

    fn sync_all(&self, ctx: &Credentials) -> FsResult<()> {
        self.traced("op.sync_all", || {
            // 1. All dirty data chunks, pipelined.
            let dirty = self.state.cache.lock().take_all_dirty();
            if !dirty.is_empty() {
                let items: Vec<(ObjectKey, Bytes)> = dirty
                    .into_iter()
                    .map(|e| (ObjectKey::data_chunk(e.ino, e.chunk), Bytes::from(e.data)))
                    .collect();
                for r in self.prt().store().put_many(&self.port, items) {
                    r.map_err(crate::prt::map_os_err)?;
                }
            }
            // 2. Size updates for written handles.
            let pending: Vec<(Ino, Ino, u64)> = {
                let mut handles = self.state.handles.lock();
                handles
                    .values_mut()
                    .filter(|h| h.wrote)
                    .map(|h| {
                        h.wrote = false;
                        (h.parent, h.ino, h.size)
                    })
                    .collect()
            };
            for (parent, ino, size) in pending {
                self.push_size(ctx, parent, ino, size)?;
            }
            // 3. Commit + checkpoint every led directory, overlapped: each
            // directory's flush runs on a port forked at the same instant,
            // so independent directories' commits proceed in parallel and
            // the caller pays the slowest one. Directories mapped to the
            // same commit lane still serialize on that lane's
            // `SharedResource` (§III-E: multiple commit threads), and
            // checkpoints land on background timelines inside `flush`.
            let mut tables: Vec<(Ino, Arc<Mutex<Metatable>>)> = self
                .state
                .tables
                .lock()
                .iter()
                .map(|(&ino, t)| (ino, Arc::clone(t)))
                .collect();
            // Deterministic flush order (the map iterates in hash order,
            // which varies between runs and would jitter the virtual-time
            // arrival order on shared resources).
            tables.sort_by_key(|&(ino, _)| ino);
            let start = self.port.now();
            let mut done = start;
            for (ino, table) in tables {
                let fork = Port::starting_at(start);
                let mut t = table.lock();
                t.flush(
                    self.prt(),
                    &fork,
                    self.state.lane(ino),
                    self.config().spec.local_meta_op,
                )?;
                done = done.max(fork.now());
            }
            self.port.wait_until(done);
            self.state.flush_epoch.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    }

    fn statfs(&self, _ctx: &Credentials) -> FsResult<FsStats> {
        self.traced("op.statfs", || {
            // Inode count via a flat LIST of `i` objects. The LIST is charged
            // as a single listing op in the cost model, but on S3-like
            // profiles it is still the most expensive metadata call we issue,
            // so the count is memoized per flush epoch: the namespace only
            // changes durably at commit/checkpoint time, and `sync_all` bumps
            // `flush_epoch`, so repeated statfs calls between flushes reuse
            // the cached count without re-walking the store.
            let epoch = self.state.flush_epoch.load(Ordering::Relaxed);
            let mut cache = self.state.statfs_cache.lock();
            let inodes = match *cache {
                Some((e, n)) if e == epoch => n,
                _ => {
                    let n = self
                        .prt()
                        .store()
                        .list(&self.port, Some(arkfs_objstore::KeyKind::Inode), None)
                        .map_err(crate::prt::map_os_err)?
                        .len() as u64;
                    *cache = Some((epoch, n));
                    n
                }
            };
            let (store_objects, store_bytes) = self.prt().store().usage();
            Ok(FsStats {
                inodes,
                store_objects,
                store_bytes,
            })
        })
    }
}
