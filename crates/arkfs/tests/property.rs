//! Property-based tests of ArkFS's core data structures and invariants.

use arkfs::cache::DataCache;
use arkfs::journal::{JournalOp, Transaction};
use arkfs::meta::{DentryBlock, DentryEntry, InodeRecord};
use arkfs::metatable::Metatable;
use arkfs::prt::Prt;
use arkfs::wire::WireCodec;
use arkfs_objstore::{ClusterConfig, ObjectCluster, ObjectKey, ObjectStore, OsError, StoreProfile};
use arkfs_simkit::Port;
use arkfs_vfs::{Acl, AclEntry, FileType, FsError};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

// ---- strategies --------------------------------------------------------------

fn arb_filetype() -> impl Strategy<Value = FileType> {
    prop_oneof![
        Just(FileType::Regular),
        Just(FileType::Directory),
        Just(FileType::Symlink),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,24}"
}

fn arb_acl() -> impl Strategy<Value = Acl> {
    prop::collection::vec((0u8..3, any::<u32>(), 0u8..8), 0..4).prop_map(|entries| {
        Acl::new(
            entries
                .into_iter()
                .map(|(tag, id, perms)| match tag {
                    0 => AclEntry::user(id, perms),
                    1 => AclEntry::group(id, perms),
                    _ => AclEntry::mask(perms),
                })
                .collect(),
        )
    })
}

prop_compose! {
    fn arb_inode()(
        ino in 2u128..,
        ftype in arb_filetype(),
        mode in 0u32..0o10000,
        uid in any::<u32>(),
        gid in any::<u32>(),
        size in any::<u64>(),
        times in any::<(u64, u64, u64)>(),
        acl in arb_acl(),
        target in "[ -~]{0,64}",
    ) -> InodeRecord {
        let mut rec = InodeRecord::new(ino, ftype, mode, uid, gid, times.0);
        rec.size = size;
        rec.mtime = times.1;
        rec.ctime = times.2;
        rec.acl = acl;
        if ftype == FileType::Symlink {
            rec.symlink_target = target;
        }
        rec
    }
}

fn arb_journal_op() -> impl Strategy<Value = JournalOp> {
    let leaf = prop_oneof![
        arb_inode().prop_map(JournalOp::PutInode),
        any::<u128>().prop_map(JournalOp::DeleteInode),
        (arb_name(), any::<u128>(), arb_filetype())
            .prop_map(|(name, ino, ftype)| JournalOp::UpsertDentry { name, ino, ftype }),
        arb_name().prop_map(|name| JournalOp::RemoveDentry { name }),
        any::<u128>().prop_map(|txid| JournalOp::RenameCommit { txid }),
        any::<u128>().prop_map(|txid| JournalOp::RenameAbort { txid }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        (
            any::<u128>(),
            any::<u128>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(txid, peer_dir, ops)| JournalOp::RenamePrepare {
                txid,
                peer_dir,
                ops,
            })
    })
}

// ---- wire codec ---------------------------------------------------------------

proptest! {
    #[test]
    fn inode_codec_roundtrip(rec in arb_inode()) {
        prop_assert_eq!(InodeRecord::from_bytes(&rec.to_bytes()).unwrap(), rec);
    }

    #[test]
    fn dentry_block_codec_roundtrip(
        entries in prop::collection::vec((arb_name(), any::<u128>(), arb_filetype()), 0..32)
    ) {
        let block = DentryBlock {
            entries: entries
                .into_iter()
                .map(|(name, ino, ftype)| DentryEntry { name, ino, ftype })
                .collect(),
        };
        prop_assert_eq!(DentryBlock::from_bytes(&block.to_bytes()).unwrap(), block);
    }

    #[test]
    fn transaction_seal_roundtrip(
        dir in any::<u128>(),
        seq in any::<u64>(),
        ops in prop::collection::vec(arb_journal_op(), 0..16),
    ) {
        let txn = Transaction { dir, seq, ops };
        prop_assert_eq!(Transaction::unseal(&txn.seal()).unwrap(), txn);
    }

    #[test]
    fn transaction_rejects_any_single_bitflip(
        ops in prop::collection::vec(arb_journal_op(), 1..6),
        flip in any::<(usize, u8)>(),
    ) {
        let txn = Transaction { dir: 1, seq: 0, ops };
        let mut sealed = txn.seal().to_vec();
        let pos = flip.0 % sealed.len();
        let bit = 1u8 << (flip.1 % 8);
        sealed[pos] ^= bit;
        // Either the checksum catches it or decoding fails; it must never
        // decode into a *different* valid transaction.
        if let Ok(decoded) = Transaction::unseal(&sealed) {
            prop_assert_eq!(decoded, txn);
        }
    }
}

// ---- metatable vs model ---------------------------------------------------------

#[derive(Debug, Clone)]
enum MtOp {
    Create(String, u128),
    Unlink(String),
    Rename(String, String),
    SetSize(u8, u64),
}

fn arb_mt_op() -> impl Strategy<Value = MtOp> {
    prop_oneof![
        ("[a-f]{1,3}", 10u128..100).prop_map(|(n, i)| MtOp::Create(n, i)),
        "[a-f]{1,3}".prop_map(MtOp::Unlink),
        ("[a-f]{1,3}", "[a-f]{1,3}").prop_map(|(a, b)| MtOp::Rename(a, b)),
        (any::<u8>(), any::<u64>()).prop_map(|(s, z)| MtOp::SetSize(s, z)),
    ]
}

proptest! {
    #[test]
    fn metatable_agrees_with_hashmap_model(ops in prop::collection::vec(arb_mt_op(), 1..100)) {
        let dir = InodeRecord::new(100, FileType::Directory, 0o755, 0, 0, 0);
        let mut mt = Metatable::fresh(dir, 4, 1000);
        // Model: name -> (ino, size).
        let mut model: HashMap<String, (u128, u64)> = HashMap::new();
        let mut created: Vec<u128> = Vec::new();
        for (t, op) in ops.into_iter().enumerate() {
            let now = t as u64;
            match op {
                MtOp::Create(name, base) => {
                    // Unique ino per creation event.
                    let ino = base + 1000 * t as u128;
                    let rec = InodeRecord::new(ino, FileType::Regular, 0o644, 0, 0, now);
                    let expect = if model.contains_key(&name) {
                        Err(FsError::AlreadyExists)
                    } else {
                        Ok(())
                    };
                    prop_assert_eq!(mt.create_child(rec, &name, now), expect.clone());
                    if expect.is_ok() {
                        model.insert(name, (ino, 0));
                        created.push(ino);
                    }
                }
                MtOp::Unlink(name) => {
                    match model.remove(&name) {
                        Some((ino, _)) => {
                            let rec = mt.unlink_child(&name, now).unwrap();
                            prop_assert_eq!(rec.ino, ino);
                        }
                        None => {
                            prop_assert_eq!(mt.unlink_child(&name, now).unwrap_err(),
                                FsError::NotFound);
                        }
                    }
                }
                MtOp::Rename(from, to) => {
                    if from == to {
                        continue;
                    }
                    let r = mt.rename_local(&from, &to, now);
                    match model.remove(&from) {
                        Some(v) => {
                            prop_assert!(r.is_ok());
                            model.insert(to, v);
                        }
                        None => {
                            prop_assert_eq!(r.unwrap_err(), FsError::NotFound);
                        }
                    }
                }
                MtOp::SetSize(sel, size) => {
                    if created.is_empty() {
                        continue;
                    }
                    let ino = created[sel as usize % created.len()];
                    let live = model.values().any(|(i, _)| *i == ino);
                    let r = mt.set_child_size(ino, size, now);
                    if live {
                        prop_assert!(r.is_ok());
                        for v in model.values_mut() {
                            if v.0 == ino {
                                v.1 = size;
                            }
                        }
                    } else {
                        prop_assert_eq!(r.unwrap_err(), FsError::Stale);
                    }
                }
            }
            prop_assert_eq!(mt.len(), model.len());
        }
        // Final state agrees: names, inos, sizes.
        let mut listed: Vec<(String, u128, u64)> = mt
            .readdir()
            .into_iter()
            .map(|e| {
                let size = mt.child_inode(e.ino).unwrap().size;
                (e.name, e.ino, size)
            })
            .collect();
        listed.sort();
        let mut expect: Vec<(String, u128, u64)> =
            model.into_iter().map(|(n, (i, s))| (n, i, s)).collect();
        expect.sort();
        prop_assert_eq!(listed, expect);
    }
}

// ---- batched data path vs sequential reference --------------------------------

/// Chunk size for the data-path differential tests (small, so random
/// offsets exercise many chunk boundaries and sub-chunk pieces).
const DP_CHUNK: u64 = 16;
const DP_INO: u128 = 42;

/// The seed's serial per-chunk data path, kept verbatim as the reference
/// the batched PRT must agree with byte-for-byte.
struct SerialRef {
    store: Arc<ObjectCluster>,
    port: Port,
}

impl SerialRef {
    fn new(s3: bool) -> Self {
        let mut cfg = ClusterConfig::test_tiny();
        if s3 {
            cfg.profile = StoreProfile::s3(&cfg.spec);
        }
        SerialRef {
            store: Arc::new(ObjectCluster::new(cfg)),
            port: Port::new(),
        }
    }

    fn write(&self, offset: u64, data: &[u8]) {
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let chunk_idx = pos / DP_CHUNK;
            let within = pos % DP_CHUNK;
            let n = ((DP_CHUNK - within) as usize).min(data.len() - written);
            let piece = Bytes::copy_from_slice(&data[written..written + n]);
            let key = ObjectKey::data_chunk(DP_INO, chunk_idx);
            match self.store.put_range(&self.port, key, within, piece.clone()) {
                Ok(()) => {}
                Err(OsError::Unsupported(_)) => {
                    let mut chunk = match self.store.get(&self.port, key) {
                        Ok(existing) => existing.to_vec(),
                        Err(OsError::NotFound) => Vec::new(),
                        Err(e) => panic!("reference write: {e:?}"),
                    };
                    let end = within as usize + n;
                    if chunk.len() < end {
                        chunk.resize(end, 0);
                    }
                    chunk[within as usize..end].copy_from_slice(&piece);
                    self.store.put(&self.port, key, Bytes::from(chunk)).unwrap();
                }
                Err(e) => panic!("reference write: {e:?}"),
            }
            written += n;
        }
    }

    fn read(&self, offset: u64, buf: &mut [u8], size: u64) -> usize {
        if offset >= size {
            return 0;
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        let mut filled = 0usize;
        while filled < want {
            let pos = offset + filled as u64;
            let chunk_idx = pos / DP_CHUNK;
            let within = pos % DP_CHUNK;
            let n = ((DP_CHUNK - within) as usize).min(want - filled);
            let out = &mut buf[filled..filled + n];
            match self.store.get_range(
                &self.port,
                ObjectKey::data_chunk(DP_INO, chunk_idx),
                within,
                n,
            ) {
                Ok(data) => {
                    out[..data.len()].copy_from_slice(&data);
                    out[data.len()..].fill(0);
                }
                Err(OsError::NotFound) => out.fill(0),
                Err(e) => panic!("reference read: {e:?}"),
            }
            filled += n;
        }
        want
    }
}

fn run_data_path_ops(ops: &[(u64, usize, u8, bool)], s3: bool) {
    let mut cfg = ClusterConfig::test_tiny();
    if s3 {
        cfg.profile = StoreProfile::s3(&cfg.spec);
    }
    let batched = Prt::new(
        Arc::new(ObjectCluster::new(cfg)) as Arc<dyn ObjectStore>,
        DP_CHUNK,
    );
    let batched_port = Port::new();
    let serial = SerialRef::new(s3);
    // Plain in-memory model of the file bytes (sparse regions are zero).
    let mut model: Vec<u8> = Vec::new();
    for &(offset, len, seed, is_write) in ops {
        if is_write {
            let data: Vec<u8> = (0..len)
                .map(|i| seed.wrapping_add(i as u8).max(1))
                .collect();
            batched
                .write_data(&batched_port, DP_INO, offset, &data)
                .unwrap();
            serial.write(offset, &data);
            let end = offset as usize + len;
            if model.len() < end {
                model.resize(end, 0);
            }
            model[offset as usize..end].copy_from_slice(&data);
        } else {
            let size = model.len() as u64;
            let mut got = vec![0xAAu8; len];
            let n = batched
                .read_data(&batched_port, DP_INO, offset, &mut got, size)
                .unwrap();
            let mut want = vec![0xAAu8; len];
            let n_ref = serial.read(offset, &mut want, size);
            assert_eq!(n, n_ref, "filled-byte count diverges at offset {offset}");
            assert_eq!(got[..n], want[..n_ref], "bytes diverge at offset {offset}");
            let expect: &[u8] = if offset as usize >= model.len() {
                &[]
            } else {
                &model[offset as usize..model.len().min(offset as usize + len)]
            };
            assert_eq!(&got[..n], expect, "batched read disagrees with the model");
        }
    }
    // Final full-file read agrees everywhere.
    let size = model.len() as u64;
    let mut got = vec![0u8; model.len()];
    let n = batched
        .read_data(&batched_port, DP_INO, 0, &mut got, size)
        .unwrap();
    assert_eq!(n, model.len());
    assert_eq!(got, model);
}

proptest! {
    #[test]
    fn batched_data_path_matches_sequential_reference_rados(
        ops in prop::collection::vec((0u64..6 * DP_CHUNK, 1usize..80, any::<u8>(), any::<bool>()), 1..30),
    ) {
        run_data_path_ops(&ops, false);
    }

    #[test]
    fn batched_data_path_matches_sequential_reference_s3(
        ops in prop::collection::vec((0u64..6 * DP_CHUNK, 1usize..80, any::<u8>(), any::<bool>()), 1..30),
    ) {
        run_data_path_ops(&ops, true);
    }
}

// ---- causal tracing: critical-path conservation -------------------------------

/// Run a random op mix on a fully-traced single-client deployment and
/// check the critical-path analyzer's conservation law: every trace's
/// segment attribution sums *exactly* to its root span duration, and
/// the per-op totals agree with the client's own ack-latency histograms
/// (same count, same exact sum/min/max — i.e. well within the ±1
/// log-linear bucket the histogram itself can resolve).
fn run_critpath_conservation(ops: &[(u8, u8, u8)], s3: bool) {
    use arkfs::{ArkCluster, ArkConfig};
    use arkfs_telemetry::{critpath, FlightDumpGuard};
    use arkfs_vfs::{Credentials, OpenFlags, Vfs};

    let config = ArkConfig::default();
    let store_cfg = if s3 {
        ClusterConfig::s3(config.spec.clone())
    } else {
        ClusterConfig::rados(config.spec.clone())
    };
    let cluster = ArkCluster::new(config, Arc::new(ObjectCluster::new(store_cfg)));
    let tel = Arc::clone(cluster.telemetry());
    // sample_every = 0 records every op's trace; the flight recorder
    // dumps the per-op event trail if this test panics.
    tel.tracer.set_enabled(true);
    tel.flight.set_enabled(true);
    let _dump = FlightDumpGuard::new(&tel.flight, "property.critpath");

    let client = cluster.client();
    let ctx = Credentials::root();
    for &(dir, file, kind) in ops {
        let d = format!("/d{}", dir % 4);
        let p = format!("{d}/f{}", file % 6);
        // Every call goes through `traced()`, so errors (AlreadyExists,
        // NotFound, ...) still produce a root span and a histogram
        // sample; conservation must hold for them too.
        match kind % 4 {
            0 => {
                let _ = client.mkdir(&ctx, &d, 0o755);
            }
            1 => {
                if let Ok(fh) = client.create(&ctx, &p, 0o644) {
                    let _ = client.write(&ctx, fh, 0, &[kind; 512]);
                    let _ = client.close(&ctx, fh);
                }
            }
            2 => {
                let _ = client.stat(&ctx, &p);
            }
            _ => {
                if let Ok(fh) = client.open(&ctx, &p, OpenFlags::RDONLY) {
                    let mut buf = [0u8; 256];
                    let _ = client.read(&ctx, fh, 0, &mut buf);
                    let _ = client.close(&ctx, fh);
                }
            }
        }
    }
    let _ = client.sync_all(&ctx);

    let breakdowns = critpath::analyze(&tel.tracer.events());
    assert!(!breakdowns.is_empty(), "no complete traces analyzed");
    let mut by_op: HashMap<String, (u64, u64, u64, u64)> = HashMap::new();
    for b in &breakdowns {
        assert_eq!(
            b.segs.iter().sum::<u64>(),
            b.total,
            "trace {:#x} ({}): segments must sum to the ack window",
            b.trace_id,
            b.root_name
        );
        let e = by_op
            .entry(b.root_name.clone())
            .or_insert((0, 0, u64::MAX, 0));
        e.0 += 1;
        e.1 += b.total;
        e.2 = e.2.min(b.total);
        e.3 = e.3.max(b.total);
    }
    for (name, (count, sum, min, max)) in by_op {
        let hist = tel
            .registry
            .histogram(&format!("{name}.latency_ns"))
            .snapshot();
        assert_eq!(hist.count(), count, "{name}: trace count vs histogram");
        assert_eq!(hist.sum(), sum, "{name}: ack-latency sum vs histogram");
        assert_eq!(hist.min(), min, "{name}: min vs histogram");
        assert_eq!(hist.max(), max, "{name}: max vs histogram");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn critpath_segments_sum_to_ack_latency_rados(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        run_critpath_conservation(&ops, false);
    }

    #[test]
    fn critpath_segments_sum_to_ack_latency_s3(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        run_critpath_conservation(&ops, true);
    }
}

// ---- cache LRU invariants -----------------------------------------------------

proptest! {
    #[test]
    fn cache_never_exceeds_capacity_and_never_loses_dirty_data(
        capacity in 1usize..16,
        ops in prop::collection::vec((0u128..4, 0u64..32, any::<u8>(), any::<bool>()), 1..200),
    ) {
        let mut cache = DataCache::new(capacity);
        // Ground truth of every chunk ever written, and where flushed
        // bytes went.
        let mut truth: HashMap<(u128, u64), u8> = HashMap::new();
        let mut store: HashMap<(u128, u64), u8> = HashMap::new();
        for (ino, chunk, val, is_write) in ops {
            if is_write {
                let evicted = cache.write(ino, chunk, 0, &[val]);
                truth.insert((ino, chunk), val);
                for e in evicted {
                    store.insert((e.ino, e.chunk), e.data[0]);
                }
            } else if let Some(data) = cache.get(ino, chunk) {
                // A cached chunk always reflects the latest write.
                prop_assert_eq!(data[0], truth[&(ino, chunk)]);
            }
            prop_assert!(cache.len() <= capacity);
        }
        // Flush everything left; store + flush must cover every write
        // with the LATEST value (no dirty data lost or reordered stale).
        for e in cache.take_all_dirty() {
            store.insert((e.ino, e.chunk), e.data[0]);
        }
        for (key, val) in truth {
            prop_assert_eq!(store.get(&key), Some(&val), "chunk {:?}", key);
        }
    }
}
