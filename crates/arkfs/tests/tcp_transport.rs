//! Differential test for the transport abstraction: one deterministic
//! two-client op script runs once over real loopback TCP (two endpoints
//! of one deployment, frames crossing actual sockets) and once over the
//! virtual-time bus, and both runs must converge to the same namespace
//! and the same per-op outcomes.
//!
//! Determinism argument: client node ids match across the two runs
//! (endpoint A mints `NodeId(1)`, endpoint B is pinned to `NodeId(2)`
//! via `set_first_node`), the ino/txid streams are seeded per node id,
//! and the script is sequential — so every draw happens in the same
//! order. Virtual timestamps differ (TCP charges no half-RTT), which is
//! why the comparison deliberately excludes atime/mtime/ctime.

use arkfs::cluster::MANAGER_BASE;
use arkfs::remote::{lease_wire, ops_wire, store_wire, RemoteStore, StoreService, STORE_NODE};
use arkfs::{ArkClient, ArkCluster, ArkConfig};
use arkfs_netsim::{NodeId, TcpTransport, Transport};
use arkfs_objstore::{ClusterConfig, ObjectCluster, ObjectStore};
use arkfs_vfs::{read_file, write_file, Credentials, SetAttr, Vfs};
use std::net::SocketAddr;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Hard timeout: a wedged socket or a deadlock must fail the test run,
/// not hang CI. The watchdog aborts the whole process if the test body
/// has not signalled completion in time.
const WATCHDOG: Duration = Duration::from_secs(120);

fn arm_watchdog() -> mpsc::Sender<()> {
    let (tx, rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        if rx.recv_timeout(WATCHDOG).is_err() {
            eprintln!("tcp_transport: watchdog fired after {WATCHDOG:?}, aborting");
            std::process::abort();
        }
    });
    tx
}

/// One op's observable outcome, rendered timestamp-free.
fn outcome<T>(r: Result<T, arkfs_vfs::FsError>, render: impl FnOnce(T) -> String) -> String {
    match r {
        Ok(v) => render(v),
        Err(e) => format!("err:{e:?}"),
    }
}

/// The deterministic two-client script. Every op's outcome is logged so
/// the TCP and bus runs can be compared step by step, not just at the
/// end. The script deliberately crosses the client boundary both ways:
/// c2 writes a file c1 created (flush broadcast c2→c1), and c1 reads a
/// directory c2 leads (forwarded readdir c1→c2).
fn run_script(c1: &ArkClient, c2: &ArkClient) -> Vec<String> {
    let ctx = Credentials::root();
    let mut log = Vec::new();
    let stat_line = |s: arkfs_vfs::Stat| {
        format!(
            "ino={:#x} ftype={:?} mode={:o} size={} nlink={}",
            s.ino, s.ftype, s.mode, s.size, s.nlink
        )
    };

    // c1 leads /shared; c2 hangs a subdirectory under it.
    log.push(outcome(c1.mkdir(&ctx, "/shared", 0o755), stat_line));
    log.push(outcome(c2.mkdir(&ctx, "/shared/sub", 0o750), stat_line));

    // Cross-client writes to one file: c1 creates, c2 overwrites (the
    // lease manager makes c1 flush), c1 reads back c2's bytes.
    log.push(outcome(
        write_file(c1, &ctx, "/shared/a.txt", b"alpha written by c1"),
        |()| "ok".into(),
    ));
    log.push(outcome(c2.stat(&ctx, "/shared/a.txt"), stat_line));
    log.push(outcome(
        write_file(
            c2,
            &ctx,
            "/shared/a.txt",
            b"beta written by c2, a bit longer",
        ),
        |()| "ok".into(),
    ));
    log.push(outcome(read_file(c1, &ctx, "/shared/a.txt"), |b| {
        format!("read:{}", String::from_utf8_lossy(&b))
    }));

    // c2-led subtree, then c1 reads and prunes it through forwarding.
    log.push(outcome(
        write_file(c2, &ctx, "/shared/sub/inner.bin", &[0x5au8; 96]),
        |()| "ok".into(),
    ));
    log.push(outcome(
        write_file(c2, &ctx, "/shared/sub/gone.bin", &[0x17u8; 33]),
        |()| "ok".into(),
    ));
    log.push(outcome(c1.readdir(&ctx, "/shared/sub"), |mut es| {
        es.sort_by(|a, b| a.name.cmp(&b.name));
        es.iter()
            .map(|e| format!("{}:{:?}", e.name, e.ftype))
            .collect::<Vec<_>>()
            .join(",")
    }));
    log.push(outcome(c1.unlink(&ctx, "/shared/sub/gone.bin"), |()| {
        "ok".into()
    }));

    // Rename within the c1-led directory, observed by c2.
    log.push(outcome(
        c1.rename(&ctx, "/shared/a.txt", "/shared/b.txt"),
        |()| "ok".into(),
    ));
    log.push(outcome(c2.stat(&ctx, "/shared/b.txt"), stat_line));

    // setattr and an expected failure, so error outcomes diff too.
    let chmod = SetAttr {
        mode: Some(0o600),
        ..SetAttr::default()
    };
    log.push(outcome(
        c2.setattr(&ctx, "/shared/b.txt", &chmod),
        stat_line,
    ));
    log.push(outcome(c1.unlink(&ctx, "/shared/nope.txt"), |()| {
        "ok".into()
    }));

    // A directory created and removed again: rmdir must propagate.
    log.push(outcome(c2.mkdir(&ctx, "/scratch", 0o755), stat_line));
    log.push(outcome(c2.rmdir(&ctx, "/scratch"), |()| "ok".into()));

    // Settle: both clients push journaled state down and hand leases back.
    log.push(outcome(c1.sync_all(&ctx), |()| "ok".into()));
    log.push(outcome(c2.sync_all(&ctx), |()| "ok".into()));
    log.push(outcome(c1.release_all(&ctx), |()| "ok".into()));
    log.push(outcome(c2.release_all(&ctx), |()| "ok".into()));
    log
}

/// Recursive namespace walk: sorted, timestamp-free view of every path.
fn walk(c: &ArkClient) -> Vec<String> {
    let ctx = Credentials::root();
    let mut out = Vec::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        let mut entries = c.readdir(&ctx, &dir).expect("walk readdir");
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            let path = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            let s = c.stat(&ctx, &path).expect("walk stat");
            out.push(format!(
                "{path} ino={:#x} ftype={:?} mode={:o} size={} nlink={}",
                s.ino, s.ftype, s.mode, s.size, s.nlink
            ));
            if e.ftype == arkfs_vfs::FileType::Directory {
                stack.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Reference run: both clients on the ordinary virtual-time bus.
fn bus_run(config: ArkConfig) -> (Vec<String>, Vec<String>) {
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let cluster = ArkCluster::new(config, store);
    let c1 = cluster.client(); // NodeId(1)
    let c2 = cluster.client(); // NodeId(2)
    let log = run_script(&c1, &c2);
    let ns = walk(&c1);
    (log, ns)
}

/// TCP run: two in-process endpoints of one deployment, wired through
/// real loopback sockets. Endpoint A hosts the store and the lease
/// managers and mints c1; endpoint B reaches both over TCP (including
/// the object store, via [`RemoteStore`]) and mints c2.
fn tcp_run(config: ArkConfig) -> (Vec<String>, Vec<String>) {
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();

    // Endpoint A: listeners for all three protocols.
    let a_lease = Arc::new(TcpTransport::new(lease_wire()));
    let a_ops = Arc::new(TcpTransport::new(ops_wire()));
    let a_store = Arc::new(TcpTransport::new(store_wire()));
    a_store.register(
        STORE_NODE,
        Arc::new(StoreService::new(Arc::clone(&store) as Arc<dyn ObjectStore>)),
    );
    let a_lease_addr = a_lease.listen(any).unwrap();
    let a_ops_addr = a_ops.listen(any).unwrap();
    let a_store_addr = a_store.listen(any).unwrap();

    // Endpoint B: its own transports, pointed at A's listeners.
    let b_lease = Arc::new(TcpTransport::new(lease_wire()));
    for k in 0..config.lease_managers.max(1) {
        b_lease.register_addr(NodeId(MANAGER_BASE - k as u32), a_lease_addr);
    }
    let b_ops = Arc::new(TcpTransport::new(ops_wire()));
    let b_ops_addr = b_ops.listen(any).unwrap();
    b_ops.register_addr(NodeId(1), a_ops_addr);
    // A must be able to forward ops to c2's directories in return.
    a_ops.register_addr(NodeId(2), b_ops_addr);
    let b_store = Arc::new(TcpTransport::new(store_wire()));
    b_store.register_addr(STORE_NODE, a_store_addr);
    let remote = RemoteStore::connect(b_store).expect("store connect");

    let cluster_a = ArkCluster::with_transports(
        config.clone(),
        Arc::clone(&store) as Arc<dyn ObjectStore>,
        a_lease.clone() as Arc<dyn Transport<_, _>>,
        a_ops.clone() as Arc<dyn Transport<_, _>>,
        true,
    );
    let cluster_b = ArkCluster::with_transports(
        config,
        remote as Arc<dyn ObjectStore>,
        b_lease.clone() as Arc<dyn Transport<_, _>>,
        b_ops.clone() as Arc<dyn Transport<_, _>>,
        false,
    );
    cluster_b.set_first_node(2); // A mints NodeId(1), B mints NodeId(2)

    let c1 = cluster_a.client();
    let c2 = cluster_b.client();
    let log = run_script(&c1, &c2);
    let ns = walk(&c1);

    // Frames really crossed sockets: every B-side protocol was used.
    assert!(b_lease.message_count() > 0, "no lease frames over TCP");
    assert!(b_ops.message_count() > 0, "no forwarded ops over TCP");

    a_lease.shutdown();
    a_ops.shutdown();
    a_store.shutdown();
    b_ops.shutdown();
    (log, ns)
}

#[test]
fn loopback_tcp_matches_the_virtual_bus() {
    let done = arm_watchdog();

    let (bus_log, bus_ns) = bus_run(ArkConfig::test_tiny());
    let (tcp_log, tcp_ns) = tcp_run(ArkConfig::test_tiny());

    assert_eq!(
        bus_log, tcp_log,
        "per-op outcomes diverged between bus and loopback TCP"
    );
    assert_eq!(
        bus_ns, tcp_ns,
        "final namespace diverged between bus and loopback TCP"
    );
    // The script actually built something worth comparing.
    assert!(bus_ns.len() >= 4, "walk unexpectedly small: {bus_ns:?}");

    let _ = done.send(());
}
