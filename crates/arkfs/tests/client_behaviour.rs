//! End-to-end behaviour tests for the ArkFS client: POSIX surface,
//! permissions, multi-client leases, cache coherence, crash recovery.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster, StoreProfile};
use arkfs_simkit::MSEC;
use arkfs_vfs::{
    read_file, write_file, Acl, AclEntry, Credentials, FileType, FsError, OpenFlags, SetAttr, Vfs,
    AM_READ, AM_WRITE,
};
use std::sync::Arc;

fn cluster_with(config: ArkConfig) -> Arc<ArkCluster> {
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    ArkCluster::new(config, store)
}

fn cluster() -> Arc<ArkCluster> {
    cluster_with(ArkConfig::test_tiny())
}

fn root() -> Credentials {
    Credentials::root()
}

// ---- single-client POSIX surface -------------------------------------------

#[test]
fn mkdir_create_write_read() {
    let c = cluster().client();
    let ctx = root();
    c.mkdir(&ctx, "/data", 0o755).unwrap();
    write_file(&*c, &ctx, "/data/f.bin", b"payload").unwrap();
    assert_eq!(read_file(&*c, &ctx, "/data/f.bin").unwrap(), b"payload");
    let st = c.stat(&ctx, "/data/f.bin").unwrap();
    assert_eq!(st.size, 7);
    assert_eq!(st.ftype, FileType::Regular);
}

#[test]
fn nested_directories_and_resolution_errors() {
    let c = cluster().client();
    let ctx = root();
    c.mkdir(&ctx, "/a", 0o755).unwrap();
    c.mkdir(&ctx, "/a/b", 0o755).unwrap();
    c.mkdir(&ctx, "/a/b/c", 0o755).unwrap();
    write_file(&*c, &ctx, "/a/b/c/deep.txt", b"x").unwrap();
    assert_eq!(c.stat(&ctx, "/a/b/c/deep.txt").unwrap().size, 1);
    // Missing intermediate component.
    assert_eq!(c.stat(&ctx, "/a/zz/c"), Err(FsError::NotFound));
    // File used as a directory.
    assert_eq!(
        c.stat(&ctx, "/a/b/c/deep.txt/x"),
        Err(FsError::NotADirectory)
    );
    // mkdir over existing name.
    assert_eq!(
        c.mkdir(&ctx, "/a/b", 0o755).err(),
        Some(FsError::AlreadyExists)
    );
}

#[test]
fn stat_root_and_readdir() {
    let c = cluster().client();
    let ctx = root();
    let st = c.stat(&ctx, "/").unwrap();
    assert!(st.is_dir());
    c.mkdir(&ctx, "/dir1", 0o755).unwrap();
    write_file(&*c, &ctx, "/file1", b"").unwrap();
    let names: Vec<String> = c
        .readdir(&ctx, "/")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["dir1", "file1"]);
    assert_eq!(c.readdir(&ctx, "/file1"), Err(FsError::NotADirectory));
}

#[test]
fn unlink_and_rmdir() {
    let c = cluster().client();
    let ctx = root();
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    write_file(&*c, &ctx, "/d/f", b"data").unwrap();
    // rmdir on file / non-empty dir fail.
    assert_eq!(c.rmdir(&ctx, "/d/f"), Err(FsError::NotADirectory));
    assert_eq!(c.rmdir(&ctx, "/d"), Err(FsError::NotEmpty));
    // unlink on dir fails.
    assert_eq!(c.unlink(&ctx, "/d"), Err(FsError::IsADirectory));
    c.unlink(&ctx, "/d/f").unwrap();
    assert_eq!(c.stat(&ctx, "/d/f"), Err(FsError::NotFound));
    c.rmdir(&ctx, "/d").unwrap();
    assert_eq!(c.stat(&ctx, "/d"), Err(FsError::NotFound));
    assert_eq!(c.unlink(&ctx, "/d/f"), Err(FsError::NotFound));
}

#[test]
fn rename_same_directory() {
    let c = cluster().client();
    let ctx = root();
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    write_file(&*c, &ctx, "/d/old", b"abc").unwrap();
    c.rename(&ctx, "/d/old", "/d/new").unwrap();
    assert_eq!(c.stat(&ctx, "/d/old"), Err(FsError::NotFound));
    assert_eq!(read_file(&*c, &ctx, "/d/new").unwrap(), b"abc");
    // Replace an existing file.
    write_file(&*c, &ctx, "/d/other", b"zzz").unwrap();
    c.rename(&ctx, "/d/new", "/d/other").unwrap();
    assert_eq!(read_file(&*c, &ctx, "/d/other").unwrap(), b"abc");
    // No-op rename.
    c.rename(&ctx, "/d/other", "/d/other").unwrap();
}

#[test]
fn rename_across_directories_two_phase() {
    let c = cluster().client();
    let ctx = root();
    c.mkdir(&ctx, "/src", 0o755).unwrap();
    c.mkdir(&ctx, "/dst", 0o755).unwrap();
    write_file(&*c, &ctx, "/src/f.txt", b"move me").unwrap();
    c.rename(&ctx, "/src/f.txt", "/dst/g.txt").unwrap();
    assert_eq!(c.stat(&ctx, "/src/f.txt"), Err(FsError::NotFound));
    assert_eq!(read_file(&*c, &ctx, "/dst/g.txt").unwrap(), b"move me");
    // An existing file target cross-directory is replaced atomically
    // (victim removed inside the destination's 2PC prepare).
    write_file(&*c, &ctx, "/src/h.txt", b"winner").unwrap();
    c.rename(&ctx, "/src/h.txt", "/dst/g.txt").unwrap();
    assert_eq!(read_file(&*c, &ctx, "/dst/g.txt").unwrap(), b"winner");
    assert_eq!(c.stat(&ctx, "/src/h.txt"), Err(FsError::NotFound));
    // A directory target is rejected.
    c.mkdir(&ctx, "/dst/subdir", 0o755).unwrap();
    write_file(&*c, &ctx, "/src/i.txt", b"stay").unwrap();
    assert_eq!(
        c.rename(&ctx, "/src/i.txt", "/dst/subdir"),
        Err(FsError::AlreadyExists)
    );
    assert_eq!(read_file(&*c, &ctx, "/src/i.txt").unwrap(), b"stay");
}

#[test]
fn rename_directory_across_parents() {
    let c = cluster().client();
    let ctx = root();
    c.mkdir(&ctx, "/p1", 0o755).unwrap();
    c.mkdir(&ctx, "/p2", 0o755).unwrap();
    c.mkdir(&ctx, "/p1/sub", 0o755).unwrap();
    write_file(&*c, &ctx, "/p1/sub/inner.txt", b"deep").unwrap();
    c.rename(&ctx, "/p1/sub", "/p2/sub2").unwrap();
    // Contents move with the directory (inode-keyed objects: no data
    // rewrite, unlike S3FS).
    assert_eq!(read_file(&*c, &ctx, "/p2/sub2/inner.txt").unwrap(), b"deep");
    assert_eq!(c.stat(&ctx, "/p1/sub"), Err(FsError::NotFound));
    // Renaming a directory into its own subtree is rejected.
    assert_eq!(
        c.rename(&ctx, "/p2", "/p2/sub2/x"),
        Err(FsError::InvalidArgument)
    );
}

#[test]
fn truncate_shrinks_and_extends() {
    let c = cluster().client();
    let ctx = root();
    write_file(&*c, &ctx, "/t.bin", &[7u8; 200]).unwrap(); // >1 chunk (64B)
    c.truncate(&ctx, "/t.bin", 100).unwrap();
    assert_eq!(c.stat(&ctx, "/t.bin").unwrap().size, 100);
    let data = read_file(&*c, &ctx, "/t.bin").unwrap();
    assert_eq!(data.len(), 100);
    assert!(data.iter().all(|&b| b == 7));
    // Extending truncate produces zeros.
    c.truncate(&ctx, "/t.bin", 150).unwrap();
    let data = read_file(&*c, &ctx, "/t.bin").unwrap();
    assert_eq!(data.len(), 150);
    assert!(data[100..].iter().all(|&b| b == 0));
    assert_eq!(c.truncate(&ctx, "/", 0), Err(FsError::IsADirectory));
}

#[test]
fn open_flags_are_enforced() {
    let c = cluster().client();
    let ctx = root();
    write_file(&*c, &ctx, "/f", b"1234").unwrap();
    let fh = c.open(&ctx, "/f", OpenFlags::RDONLY).unwrap();
    assert_eq!(c.write(&ctx, fh, 0, b"x"), Err(FsError::BadAccessMode));
    let mut buf = [0u8; 4];
    assert_eq!(c.read(&ctx, fh, 0, &mut buf).unwrap(), 4);
    c.close(&ctx, fh).unwrap();
    let fh = c.open(&ctx, "/f", OpenFlags::WRONLY).unwrap();
    assert_eq!(c.read(&ctx, fh, 0, &mut buf), Err(FsError::BadAccessMode));
    c.close(&ctx, fh).unwrap();
    // O_TRUNC clears the file.
    let fh = c.open(&ctx, "/f", OpenFlags::RDWR.truncate()).unwrap();
    c.close(&ctx, fh).unwrap();
    assert_eq!(c.stat(&ctx, "/f").unwrap().size, 0);
    // Bad handle.
    assert_eq!(
        c.read(&ctx, arkfs_vfs::FileHandle(999), 0, &mut buf),
        Err(FsError::BadHandle)
    );
}

#[test]
fn append_mode_appends() {
    let c = cluster().client();
    let ctx = root();
    write_file(&*c, &ctx, "/log", b"one").unwrap();
    let fh = c.open(&ctx, "/log", OpenFlags::WRONLY.append()).unwrap();
    c.write(&ctx, fh, 0, b"-two").unwrap(); // offset ignored under O_APPEND
    c.close(&ctx, fh).unwrap();
    assert_eq!(read_file(&*c, &ctx, "/log").unwrap(), b"one-two");
}

#[test]
fn sparse_writes_read_zero_gaps() {
    let c = cluster().client();
    let ctx = root();
    let fh = c.create(&ctx, "/sparse", 0o644).unwrap();
    c.write(&ctx, fh, 200, b"end").unwrap(); // chunks 0-2 never written
    c.close(&ctx, fh).unwrap();
    let data = read_file(&*c, &ctx, "/sparse").unwrap();
    assert_eq!(data.len(), 203);
    assert!(data[..200].iter().all(|&b| b == 0));
    assert_eq!(&data[200..], b"end");
}

#[test]
fn symlinks_create_read_follow() {
    let c = cluster().client();
    let ctx = root();
    write_file(&*c, &ctx, "/target.txt", b"pointed").unwrap();
    let st = c.symlink(&ctx, "/link", "/target.txt").unwrap();
    assert_eq!(st.ftype, FileType::Symlink);
    assert_eq!(c.readlink(&ctx, "/link").unwrap(), "/target.txt");
    assert_eq!(
        c.readlink(&ctx, "/target.txt"),
        Err(FsError::InvalidArgument)
    );
    // open() follows the link.
    let fh = c.open(&ctx, "/link", OpenFlags::RDONLY).unwrap();
    let mut buf = [0u8; 16];
    let n = c.read(&ctx, fh, 0, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"pointed");
    c.close(&ctx, fh).unwrap();
    // Symlink loops are detected.
    c.symlink(&ctx, "/loop1", "/loop2").unwrap();
    c.symlink(&ctx, "/loop2", "/loop1").unwrap();
    assert_eq!(
        c.open(&ctx, "/loop1", OpenFlags::RDONLY),
        Err(FsError::InvalidArgument)
    );
}

#[test]
fn setattr_chmod_chown() {
    let c = cluster().client();
    let ctx = root();
    write_file(&*c, &ctx, "/f", b"").unwrap();
    let st = c.setattr(&ctx, "/f", &SetAttr::chmod(0o600)).unwrap();
    assert_eq!(st.mode, 0o600);
    let st = c.setattr(&ctx, "/f", &SetAttr::chown(5, 6)).unwrap();
    assert_eq!((st.uid, st.gid), (5, 6));
    // Directory attrs go through the directory's own leader.
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    let st = c.setattr(&ctx, "/d", &SetAttr::chmod(0o700)).unwrap();
    assert_eq!(st.mode, 0o700);
    assert_eq!(c.stat(&ctx, "/d").unwrap().mode, 0o700);
}

// ---- permissions -------------------------------------------------------------

#[test]
fn permission_checks_apply_to_users() {
    let c = cluster().client();
    let ctx = root();
    let alice = Credentials::user(100);
    let bob = Credentials::user(200);
    c.mkdir(&ctx, "/home", 0o755).unwrap();
    c.mkdir(&ctx, "/home/alice", 0o700).unwrap();
    c.setattr(&ctx, "/home/alice", &SetAttr::chown(100, 100))
        .unwrap();
    // Alice can create in her directory, Bob cannot even stat through it.
    write_file(&*c, &alice, "/home/alice/notes.txt", b"secret").unwrap();
    assert_eq!(
        c.stat(&bob, "/home/alice/notes.txt"),
        Err(FsError::PermissionDenied)
    );
    assert_eq!(
        write_file(&*c, &bob, "/home/alice/intrusion", b""),
        Err(FsError::PermissionDenied)
    );
    // Bob cannot chmod Alice's file; Alice can.
    assert_eq!(
        c.setattr(&bob, "/home/alice/notes.txt", &SetAttr::chmod(0o777))
            .err(),
        Some(FsError::PermissionDenied)
    );
    assert!(c
        .setattr(&alice, "/home/alice/notes.txt", &SetAttr::chmod(0o640))
        .is_ok());
    // Only root chowns.
    assert_eq!(
        c.setattr(&alice, "/home/alice/notes.txt", &SetAttr::chown(200, 200))
            .err(),
        Some(FsError::NotPermitted)
    );
}

#[test]
fn acl_grants_cross_owner_access() {
    let c = cluster().client();
    let ctx = root();
    let alice = Credentials::user(100);
    let bob = Credentials::user(200);
    c.mkdir(&ctx, "/proj", 0o711).unwrap();
    write_file(&*c, &ctx, "/proj/shared.dat", b"team data").unwrap();
    c.setattr(&ctx, "/proj/shared.dat", &SetAttr::chmod(0o600))
        .unwrap();
    c.setattr(&ctx, "/proj/shared.dat", &SetAttr::chown(100, 100))
        .unwrap();
    // Without an ACL Bob is locked out.
    assert_eq!(
        c.access(&bob, "/proj/shared.dat", AM_READ),
        Err(FsError::PermissionDenied)
    );
    // Alice grants Bob read via ACL.
    let acl = Acl::new(vec![AclEntry::user(200, 0o4)]);
    c.set_acl(&alice, "/proj/shared.dat", &acl).unwrap();
    assert_eq!(c.get_acl(&ctx, "/proj/shared.dat").unwrap(), acl);
    c.access(&bob, "/proj/shared.dat", AM_READ).unwrap();
    assert_eq!(
        c.access(&bob, "/proj/shared.dat", AM_WRITE),
        Err(FsError::PermissionDenied)
    );
    assert_eq!(
        read_file(&*c, &bob, "/proj/shared.dat").unwrap(),
        b"team data"
    );
}

// ---- multi-client: leases, forwarding, coherence ------------------------------

#[test]
fn second_client_forwards_to_leader() {
    let cl = cluster();
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/shared", 0o755).unwrap();
    write_file(&*c1, &ctx, "/shared/from1.txt", b"one").unwrap();
    // c2 resolves through c1 (the leader) and sees the file immediately
    // (strong metadata consistency, no fsync needed).
    assert_eq!(c2.stat(&ctx, "/shared/from1.txt").unwrap().size, 3);
    // c2 creates through the leader as well.
    write_file(&*c2, &ctx, "/shared/from2.txt", b"two!").unwrap();
    assert_eq!(c1.stat(&ctx, "/shared/from2.txt").unwrap().size, 4);
    assert_eq!(c2.readdir(&ctx, "/shared").unwrap().len(), 2);
    // c1 leads both / and /shared; c2 leads nothing.
    assert_eq!(c1.led_directories(), 2);
    assert_eq!(c2.led_directories(), 0);
    // Data written by c2 is readable by c1 (read through object store).
    assert_eq!(read_file(&*c1, &ctx, "/shared/from2.txt").unwrap(), b"two!");
}

#[test]
fn clients_lead_disjoint_directories() {
    let cl = cluster();
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/job1", 0o755).unwrap();
    c1.mkdir(&ctx, "/job2", 0o755).unwrap();
    write_file(&*c1, &ctx, "/job1/a", b"1").unwrap();
    write_file(&*c2, &ctx, "/job2/b", b"2").unwrap();
    // c2 acquired the lease of /job2 (first accessor wins).
    assert!(c2.led_directories() >= 1);
    assert_eq!(read_file(&*c1, &ctx, "/job2/b").unwrap(), b"2");
}

#[test]
fn clean_release_hands_leadership_over() {
    let cl = cluster();
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/dir", 0o755).unwrap();
    write_file(&*c1, &ctx, "/dir/f", b"persisted").unwrap();
    c1.release_all(&ctx).unwrap();
    assert_eq!(c1.led_directories(), 0);
    // c2 can immediately become the leader and sees everything.
    assert_eq!(read_file(&*c2, &ctx, "/dir/f").unwrap(), b"persisted");
    assert!(c2.led_directories() >= 1);
}

#[test]
fn dirty_lease_takeover_recovers_journal() {
    // Journal window 0: every mutation commits its own transaction, so a
    // crash loses nothing that was acknowledged.
    let config = ArkConfig::test_tiny()
        .with_journal_window(0)
        .with_lease_period(MSEC, MSEC);
    let cl = cluster_with(config);
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/work", 0o755).unwrap();
    write_file(&*c1, &ctx, "/work/journaled.txt", b"in the journal").unwrap();
    // Hard crash: no checkpoint ran; metadata lives only in journal
    // objects.
    c1.crash();
    // c2 comes along after lease + grace; recovery replays the journal.
    c2.port().advance(10 * MSEC);
    assert_eq!(
        read_file(&*c2, &ctx, "/work/journaled.txt").unwrap(),
        b"in the journal"
    );
    let entries = c2.readdir(&ctx, "/work").unwrap();
    assert_eq!(entries.len(), 1);
}

#[test]
fn lease_manager_crash_and_restart() {
    let config = ArkConfig::test_tiny().with_lease_period(MSEC, MSEC);
    let cl = cluster_with(config);
    let c1 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    // Warm c1's lease on /d so it can keep working through the outage.
    write_file(&*c1, &ctx, "/d/before", b"x").unwrap();
    cl.crash_lease_manager();
    // Existing leases still valid: c1 continues in its led directories
    // (§III-E.2: "any client who has the lease can continue its work").
    write_file(&*c1, &ctx, "/d/during_outage", b"ok").unwrap();
    // A client without a lease needs the manager and times out.
    let c2 = cl.client();
    assert_eq!(
        c2.stat(&ctx, "/d/during_outage").err(),
        Some(FsError::TimedOut)
    );
    // Make c1's work durable, then restart the manager; after the
    // startup grace, new leases are granted again.
    c1.sync_all(&ctx).unwrap();
    cl.restart_lease_manager(c2.port().now());
    c2.port().advance(2 * MSEC);
    c1.port().advance(10 * MSEC); // c1's lease must lapse too
    assert_eq!(read_file(&*c2, &ctx, "/d/during_outage").unwrap(), b"ok");
}

#[test]
fn write_conflict_degrades_to_direct_io() {
    let cl = cluster();
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    write_file(&*c1, &ctx, "/d/shared.bin", &[1u8; 100]).unwrap();
    // Both clients open; c1 writes first (cached), then c2 writes too,
    // forcing a flush broadcast and direct mode.
    let f1 = c1.open(&ctx, "/d/shared.bin", OpenFlags::RDWR).unwrap();
    let f2 = c2.open(&ctx, "/d/shared.bin", OpenFlags::RDWR).unwrap();
    c1.write(&ctx, f1, 0, &[2u8; 50]).unwrap();
    c2.write(&ctx, f2, 50, &[3u8; 50]).unwrap();
    c1.fsync(&ctx, f1).unwrap();
    c2.fsync(&ctx, f2).unwrap();
    c1.close(&ctx, f1).unwrap();
    c2.close(&ctx, f2).unwrap();
    let data = read_file(&*c1, &ctx, "/d/shared.bin").unwrap();
    assert_eq!(data.len(), 100);
    assert!(data[..50].iter().all(|&b| b == 2), "c1's write visible");
    assert!(data[50..].iter().all(|&b| b == 3), "c2's write visible");
}

#[test]
fn pcache_serves_repeat_lookups_locally() {
    let cl = cluster_with(ArkConfig::test_tiny().with_permission_cache(true));
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/hot", 0o755).unwrap();
    write_file(&*c1, &ctx, "/hot/f", b"x").unwrap();
    // First c2 access populates the cache; repeats should not add RPC
    // traffic proportional to calls.
    c2.stat(&ctx, "/hot/f").unwrap();
    let before = cl.ops_net().message_count();
    for _ in 0..50 {
        c2.stat(&ctx, "/hot/f").unwrap();
    }
    let after = cl.ops_net().message_count();
    // Lookups of /hot in / and of f in /hot are cached... but the final
    // stat still fetches the inode through the parent leader. The saving
    // shows in path resolution: well under 2 RPCs per stat.
    assert!(
        after - before <= 60,
        "pcache should absorb most lookups, got {}",
        after - before
    );
}

#[test]
fn no_pcache_sends_every_lookup_to_leaders() {
    let cl = cluster_with(ArkConfig::test_tiny().with_permission_cache(false));
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/hot", 0o755).unwrap();
    write_file(&*c1, &ctx, "/hot/f", b"x").unwrap();
    c2.stat(&ctx, "/hot/f").unwrap();
    let before = cl.ops_net().message_count();
    for _ in 0..50 {
        c2.stat(&ctx, "/hot/f").unwrap();
    }
    let after = cl.ops_net().message_count();
    assert!(
        after - before >= 100,
        "every component lookup must RPC, got {}",
        after - before
    );
}

#[test]
fn readahead_turns_sequential_reads_into_cache_hits() {
    let c = cluster().client();
    let ctx = root();
    let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    write_file(&*c, &ctx, "/seq.bin", &payload).unwrap();
    c.sync_all(&ctx).unwrap();

    let fh = c.open(&ctx, "/seq.bin", OpenFlags::RDONLY).unwrap();
    let (_, misses_before) = c.cache_stats();
    let mut buf = [0u8; 64];
    let mut off = 0u64;
    let mut out = Vec::new();
    loop {
        let n = c.read(&ctx, fh, off, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
        off += n as u64;
    }
    c.close(&ctx, fh).unwrap();
    assert_eq!(out, payload);
    let (hits_after, misses_after) = c.cache_stats();
    // Read-ahead at offset 0 goes straight to the max window: most chunk
    // accesses must be hits.
    assert!(
        hits_after > (misses_after - misses_before),
        "hits {hits_after} vs misses {}",
        misses_after - misses_before
    );
}

#[test]
fn s3_backend_full_stack() {
    // The whole stack also runs on the S3 profile (PRT falls back to
    // read-modify-write for sub-chunk writes).
    let mut store_cfg = ClusterConfig::test_tiny();
    store_cfg.profile = StoreProfile::s3(&store_cfg.spec);
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let cl = ArkCluster::new(ArkConfig::test_tiny(), store);
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/s3dir", 0o755).unwrap();
    write_file(&*c, &ctx, "/s3dir/f", &[9u8; 300]).unwrap();
    assert_eq!(read_file(&*c, &ctx, "/s3dir/f").unwrap(), [9u8; 300]);
    // Sub-chunk rewrite through direct I/O path (second writer forces
    // direct mode on S3 where put_range is unsupported).
    let c2 = cl.client();
    let f1 = c.open(&ctx, "/s3dir/f", OpenFlags::RDWR).unwrap();
    let f2 = c2.open(&ctx, "/s3dir/f", OpenFlags::RDWR).unwrap();
    c.write(&ctx, f1, 0, &[1u8; 10]).unwrap();
    c2.write(&ctx, f2, 20, &[2u8; 10]).unwrap();
    for (cl_, fh) in [(&c, f1), (&c2, f2)] {
        cl_.fsync(&ctx, fh).unwrap();
        cl_.close(&ctx, fh).unwrap();
    }
    let data = read_file(&*c, &ctx, "/s3dir/f").unwrap();
    assert_eq!(&data[..10], &[1u8; 10]);
    assert_eq!(&data[20..30], &[2u8; 10]);
}

#[test]
fn sync_all_makes_state_durable_for_fresh_clients() {
    let cl = cluster();
    let c1 = cl.client();
    let ctx = root();
    for i in 0..20 {
        write_file(
            &*c1,
            &ctx,
            &format!("/file{i}"),
            format!("body{i}").as_bytes(),
        )
        .unwrap();
    }
    c1.release_all(&ctx).unwrap();
    // A brand-new client on the same store sees all of it.
    let c2 = cl.client();
    assert_eq!(c2.readdir(&ctx, "/").unwrap().len(), 20);
    assert_eq!(read_file(&*c2, &ctx, "/file7").unwrap(), b"body7");
}

#[test]
fn many_files_across_buckets_survive_reload() {
    // More files than dentry buckets: exercises bucket spreading.
    let cl = cluster();
    let c1 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/big", 0o755).unwrap();
    for i in 0..100 {
        write_file(&*c1, &ctx, &format!("/big/f{i:03}"), &[i as u8]).unwrap();
    }
    c1.release_all(&ctx).unwrap();
    let c2 = cl.client();
    let entries = c2.readdir(&ctx, "/big").unwrap();
    assert_eq!(entries.len(), 100);
    assert_eq!(read_file(&*c2, &ctx, "/big/f042").unwrap(), &[42u8]);
}

#[test]
fn virtual_time_advances_with_work() {
    let c = cluster().client();
    let ctx = root();
    let t0 = c.port().now();
    c.mkdir(&ctx, "/timed", 0o755).unwrap();
    write_file(&*c, &ctx, "/timed/f", &[0u8; 1000]).unwrap();
    c.sync_all(&ctx).unwrap();
    assert!(c.port().now() > t0, "operations must consume virtual time");
}

#[test]
fn full_stack_on_erasure_coded_store() {
    // The whole file system runs unchanged on an erasure-coded backend
    // (PRT falls back to read-modify-write for sub-chunk writes, since
    // EC objects take full-stripe writes only), and survives a storage
    // node failure.
    let store_cfg = ClusterConfig::test_tiny().with_erasure_coding(2);
    let mut store_cfg = store_cfg;
    store_cfg.shards = 4;
    let store = Arc::new(ObjectCluster::new(store_cfg));
    let cl = ArkCluster::new(
        ArkConfig::test_tiny(),
        Arc::clone(&store) as Arc<dyn arkfs_objstore::ObjectStore>,
    );
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/ec", 0o755).unwrap();
    write_file(&*c, &ctx, "/ec/f", &[3u8; 500]).unwrap();
    // Sub-chunk overwrite exercises the RMW fallback.
    let fh = c.open(&ctx, "/ec/f", OpenFlags::RDWR).unwrap();
    c.write(&ctx, fh, 100, &[9u8; 20]).unwrap();
    c.fsync(&ctx, fh).unwrap();
    c.close(&ctx, fh).unwrap();
    c.release_all(&ctx).unwrap();

    // One storage node dies; everything is still readable via
    // reconstruction.
    store.faults.fail_shard(0);
    let c2 = cl.client();
    let data = read_file(&*c2, &ctx, "/ec/f").unwrap();
    assert_eq!(data.len(), 500);
    assert!(data[100..120].iter().all(|&b| b == 9));
    assert!(data[..100].iter().all(|&b| b == 3));
}

#[test]
fn lease_manager_cluster_partitions_directories() {
    // The paper's future-work extension: a cluster of lease managers,
    // directories partitioned by inode number. Everything must behave
    // identically — leases, forwarding, handover.
    let config = ArkConfig::test_tiny().with_lease_managers(4);
    let cl = cluster_with(config);
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    for i in 0..8 {
        c1.mkdir(&ctx, &format!("/d{i}"), 0o755).unwrap();
        write_file(&*c1, &ctx, &format!("/d{i}/f"), &[i as u8]).unwrap();
    }
    // Leases were acquired from several distinct managers (uuid inodes
    // spread by modulo): at least two manager nodes saw traffic. We can
    // observe it indirectly: every directory still works from a second
    // client via forwarding.
    for i in 0..8 {
        assert_eq!(
            read_file(&*c2, &ctx, &format!("/d{i}/f")).unwrap(),
            [i as u8]
        );
    }
    // Clean handover across the manager cluster.
    c1.release_all(&ctx).unwrap();
    assert_eq!(c1.led_directories(), 0);
    c2.mkdir(&ctx, "/d0/sub", 0o755).unwrap();
    assert!(c2.led_directories() >= 1);

    // Crash/restart applies to the whole manager cluster.
    cl.crash_lease_manager();
    let c3 = cl.client();
    assert_eq!(c3.stat(&ctx, "/d1/f").err(), Some(FsError::TimedOut));
    cl.restart_lease_manager(c3.port().now());
    c3.port().advance(50 * MSEC);
    c2.port().advance(50 * MSEC);
    assert_eq!(read_file(&*c3, &ctx, "/d1/f").unwrap(), [1u8]);
}
