//! Threaded stress tests: real OS threads hammering one [`ArkClient`].
//!
//! The client's hot state is lock-striped (dir-leadership table and
//! pcache by directory ino, handle table by handle id) under the
//! ordering rule **stripe → metatable → cache** (see
//! `client/lockorder.rs`, which enforces it with debug assertions —
//! these tests run it in anger across 8 threads). Each thread works a
//! disjoint directory plus one directory shared by all threads; the
//! asserts check that the namespace, handle table, and leadership
//! bookkeeping stay consistent under interleaving.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_vfs::{read_file, write_file, Credentials, Vfs};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const FILES_PER_THREAD: usize = 10;

fn cluster_with(config: ArkConfig) -> Arc<ArkCluster> {
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    ArkCluster::new(config, store)
}

/// Drive `THREADS` real threads through one shared client and check the
/// end state. Returns the client for config-specific asserts.
fn hammer(config: ArkConfig) -> Arc<arkfs::ArkClient> {
    let client = cluster_with(config).client();
    let ctx = Credentials::root();
    client.mkdir(&ctx, "/shared", 0o755).unwrap();
    for i in 0..THREADS {
        client.mkdir(&ctx, &format!("/t{i}"), 0o755).unwrap();
    }

    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let c = Arc::clone(&client);
            thread::spawn(move || {
                let ctx = Credentials::root();
                for k in 0..FILES_PER_THREAD {
                    // Disjoint directory: full create/write/read/stat cycle.
                    // 96 bytes spans two test_tiny (64-byte) chunks, so the
                    // data cache and write-back paths are exercised too.
                    let private = format!("/t{i}/f{k}.bin");
                    let payload = vec![(i * 31 + k) as u8; 96];
                    write_file(&*c, &ctx, &private, &payload).unwrap();
                    assert_eq!(read_file(&*c, &ctx, &private).unwrap(), payload);
                    assert_eq!(c.stat(&ctx, &private).unwrap().size, 96);

                    // Shared directory: all threads contend on one
                    // metatable (and one dir stripe).
                    let shared = format!("/shared/t{i}_f{k}");
                    write_file(&*c, &ctx, &shared, &payload[..32]).unwrap();
                    assert_eq!(c.stat(&ctx, &shared).unwrap().size, 32);
                }
                assert_eq!(
                    c.readdir(&ctx, &format!("/t{i}")).unwrap().len(),
                    FILES_PER_THREAD
                );
            })
        })
        .collect();
    for w in workers {
        w.join()
            .expect("worker thread panicked (or deadlock abort)");
    }

    // Every open was closed: the sharded handle table drained fully.
    assert_eq!(client.open_handles(), 0);
    // Namespace consistency: nothing lost or duplicated under interleaving.
    assert_eq!(
        client.readdir(&ctx, "/shared").unwrap().len(),
        THREADS * FILES_PER_THREAD
    );
    for i in 0..THREADS {
        let mut names: Vec<String> = client
            .readdir(&ctx, &format!("/t{i}"))
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort();
        let mut expect: Vec<String> = (0..FILES_PER_THREAD).map(|k| format!("f{k}.bin")).collect();
        expect.sort();
        assert_eq!(names, expect);
    }
    // Leadership bookkeeping: root + the 8 private dirs + /shared.
    assert_eq!(client.led_directories(), THREADS + 2);
    client
}

#[test]
fn eight_threads_share_one_client() {
    // test_tiny uses 4 stripes, so 8 directories force stripe collisions.
    let client = hammer(ArkConfig::test_tiny());
    let stats = client.lock_stats();
    assert!(
        stats.dir_stripe.acquisitions > 0,
        "dir stripes were never locked?"
    );
    assert!(
        stats.handle_shard.acquisitions > 0,
        "handle shards were never locked?"
    );
    assert!(
        stats.data_cache.acquisitions > 0,
        "data cache was never locked?"
    );
    // Clean shutdown releases every lease.
    client.release_all(&Credentials::root()).unwrap();
    assert_eq!(client.led_directories(), 0);
    assert_eq!(client.lease_release_failures(), 0);
}

#[test]
fn single_stripe_ablation_config_is_still_correct() {
    // `client_lock_stripes = 1` collapses every table to one global lock
    // (the pre-striping behavior, kept as the ablation baseline); it must
    // stay correct, just slower under contention.
    let client = hammer(ArkConfig::test_tiny().with_client_lock_stripes(1));
    client.release_all(&Credentials::root()).unwrap();
    assert_eq!(client.led_directories(), 0);
}
