//! End-to-end tests for the asynchronous metadata commit pipeline:
//! speculative dependent operations against acked-but-not-durable
//! entries, `fsync`/`sync_all` durability-barrier semantics, the
//! sync-mode ablation contrast, and per-lane in-flight backpressure.

use arkfs::{ArkCluster, ArkConfig, CommitMode};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::{ClusterSpec, Port, MSEC, SEC};
use arkfs_vfs::{Credentials, FsError, Vfs};
use std::sync::Arc;

fn cluster_with(config: ArkConfig) -> Arc<ArkCluster> {
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    ArkCluster::new(config, store)
}

/// Async config whose seal window never fires on its own: everything
/// acked stays in the running (unsealed) transaction until a barrier.
fn async_wide_window() -> ArkConfig {
    ArkConfig::test_tiny()
        .with_lease_period(MSEC, MSEC)
        .with_async_commit(10 * SEC, 8)
}

fn root() -> Credentials {
    Credentials::root()
}

/// Journal object count for one directory (0 = nothing durable there).
fn journal_len(cl: &Arc<ArkCluster>, dir: u128) -> usize {
    cl.prt().list_journal(&Port::new(), dir).unwrap().len()
}

#[test]
fn speculative_ops_hit_uncommitted_entries() {
    let cl = cluster_with(async_wide_window());
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    let dir = c.stat(&ctx, "/d").unwrap().ino;

    // create is acked with its transaction still running (not even
    // sealed): no journal object exists yet.
    let fh = c.create(&ctx, "/d/f", 0o644).unwrap();
    c.close(&ctx, fh).unwrap();
    assert_eq!(journal_len(&cl, dir), 0, "create acked before durability");

    // Dependent operations resolve against the uncommitted entry.
    let st = c.stat(&ctx, "/d/f").unwrap();
    assert_eq!(st.size, 0);
    let names: Vec<String> = c
        .readdir(&ctx, "/d")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["f"]);
    c.unlink(&ctx, "/d/f").unwrap();
    assert_eq!(c.stat(&ctx, "/d/f"), Err(FsError::NotFound));
    assert_eq!(journal_len(&cl, dir), 0, "all speculative, none durable");
}

#[test]
fn fsync_is_a_durability_barrier() {
    let cl = cluster_with(async_wide_window());
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    // Make the parent dentry (root's journal) durable first, as POSIX
    // would require fsyncing the parent directory.
    c1.sync_all(&ctx).unwrap();
    let dir = c1.stat(&ctx, "/d").unwrap().ino;

    let fh = c1.create(&ctx, "/d/f", 0o644).unwrap();
    assert_eq!(journal_len(&cl, dir), 0, "acked, not durable");
    c1.fsync(&ctx, fh).unwrap();
    assert_eq!(journal_len(&cl, dir), 1, "fsync sealed + flushed the txn");

    // The acked-then-fsynced create survives a hard crash.
    c1.crash();
    c2.port().advance(10 * MSEC);
    assert_eq!(c2.stat(&ctx, "/d/f").unwrap().size, 0);
}

#[test]
fn sync_all_is_a_durability_barrier() {
    let cl = cluster_with(async_wide_window());
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    for i in 0..5 {
        let fh = c1.create(&ctx, &format!("/d/f{i}"), 0o644).unwrap();
        c1.close(&ctx, fh).unwrap();
    }
    c1.sync_all(&ctx).unwrap();
    c1.crash();
    c2.port().advance(10 * MSEC);
    let entries = c2.readdir(&ctx, "/d").unwrap();
    assert_eq!(entries.len(), 5, "sync_all made every acked create durable");
}

#[test]
fn ack_without_barrier_can_lose_ops_that_sync_mode_keeps() {
    let payload = b"payload";
    // Identical workload on both pipelines: mkdir (made durable), then
    // create + write + close, then a hard crash with no barrier.
    let run = |mode: CommitMode| -> Result<u64, FsError> {
        let cl = cluster_with(
            async_wide_window()
                .with_commit_mode(mode)
                .with_journal_window(10 * SEC),
        );
        let c1 = cl.client();
        let c2 = cl.client();
        let ctx = root();
        c1.mkdir(&ctx, "/d", 0o755).unwrap();
        c1.sync_all(&ctx).unwrap();
        let fh = c1.create(&ctx, "/d/f", 0o644).unwrap();
        c1.write(&ctx, fh, 0, payload).unwrap();
        c1.close(&ctx, fh).unwrap();
        c1.crash();
        c2.port().advance(10 * MSEC);
        c2.stat(&ctx, "/d/f").map(|st| st.size)
    };
    // Sync mode (the seed's pipeline): close implies fsync, whose size
    // push forces the whole running transaction durable before the ack.
    assert_eq!(run(CommitMode::Sync), Ok(payload.len() as u64));
    // Async mode: create/write/close were acked before durability; the
    // crash erases the file. This is the window the barriers close.
    assert_eq!(run(CommitMode::Async), Err(FsError::NotFound));
}

#[test]
fn eager_seal_window_makes_every_acked_op_durable() {
    // Window 0: every mutation seals its own transaction and the lane
    // driver flushes it immediately — a crash loses nothing acked even
    // without barriers (the async pipeline's tightest loss bound).
    let cl = cluster_with(
        ArkConfig::test_tiny()
            .with_lease_period(MSEC, MSEC)
            .with_journal_window(0),
    );
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    for i in 0..3 {
        let fh = c1.create(&ctx, &format!("/d/f{i}"), 0o644).unwrap();
        c1.close(&ctx, fh).unwrap();
    }
    c1.crash();
    c2.port().advance(10 * MSEC);
    assert_eq!(c2.readdir(&ctx, "/d").unwrap().len(), 3);
}

#[test]
fn sealed_depth_gauge_tracks_inflight_and_drains() {
    let cl = cluster_with(
        ArkConfig::test_tiny()
            .with_lease_period(MSEC, MSEC)
            .with_journal_window(0),
    );
    let c = cl.client();
    let ctx = root();
    let depth = cl.telemetry().registry.gauge("journal.sealed_depth");
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    let fh = c.create(&ctx, "/d/f", 0o644).unwrap();
    c.close(&ctx, fh).unwrap();
    assert!(
        depth.get() > 0,
        "sealed batches in flight after eager seals"
    );
    c.sync_all(&ctx).unwrap();
    assert_eq!(depth.get(), 0, "sync_all drains every lane");
}

#[test]
fn fsync_barriers_every_partition_lane() {
    // Regression: fsync on a file in a partitioned directory must drain
    // *all* partition commit lanes, not just the lane of the partition
    // the fsynced name hashes to — other handles' acked creates live in
    // the other partitions' running transactions.
    let cl = cluster_with(async_wide_window());
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    c1.sync_all(&ctx).unwrap();
    let dir = c1.stat(&ctx, "/d").unwrap().ino;
    c1.set_dir_partitions(&ctx, "/d", 4).unwrap();

    let fhs: Vec<_> = (0..16)
        .map(|i| c1.create(&ctx, &format!("/d/f{i:02}"), 0o644).unwrap())
        .collect();
    for p in 0..4 {
        let pkey = arkfs::partition::partition_ino(dir, p);
        assert_eq!(journal_len(&cl, pkey), 0, "partition {p}: acked only");
    }
    // One fsync, on one handle; every partition's stream must flush.
    c1.fsync(&ctx, fhs[0]).unwrap();
    let durable: usize = (0..4)
        .map(|p| journal_len(&cl, arkfs::partition::partition_ino(dir, p)))
        .sum();
    assert!(
        durable >= 2,
        "fsync flushed more than the fsynced partition"
    );

    // The real contract: a crash right after the single fsync loses
    // none of the 16 acked creates, whichever partition holds them.
    c1.crash();
    c2.port().advance(10 * MSEC);
    assert_eq!(c2.readdir(&ctx, "/d").unwrap().len(), 16);
}

#[test]
fn group_commit_carries_colaned_directories_in_one_flight() {
    // Two directories sharing a commit lane (test_tiny has 2 lanes, so
    // inos of equal parity co-lane): when one directory's window
    // expires and it flushes, the co-laned directory's due work rides
    // in the same grouped flight instead of queueing its own.
    let window = 5 * MSEC;
    let cl = cluster_with(
        ArkConfig::test_tiny()
            .with_lease_period(SEC, SEC)
            .with_async_commit(window, 8),
    );
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/a", 0o755).unwrap();
    c.mkdir(&ctx, "/b", 0o755).unwrap();
    c.mkdir(&ctx, "/c", 0o755).unwrap();
    let (a, b, cc) = (
        c.stat(&ctx, "/a").unwrap().ino,
        c.stat(&ctx, "/b").unwrap().ino,
        c.stat(&ctx, "/c").unwrap().ino,
    );
    // Pick two directories on the same lane (same ino parity).
    let (donor_path, donor) = if a % 2 == cc % 2 {
        ("/c", cc)
    } else {
        ("/b", b)
    };
    c.sync_all(&ctx).unwrap();

    // Donor: one acked create, left running (no barrier on it, ever).
    let fh = c.create(&ctx, &format!("{donor_path}/d0"), 0o644).unwrap();
    c.close(&ctx, fh).unwrap();
    assert_eq!(journal_len(&cl, donor), 0, "donor acked, not durable");
    // Primary: a create, then another after the window expires — the
    // second mutation seals + flushes /a, and the donor's expired
    // window makes its transaction ride the same flight.
    let fh = c.create(&ctx, "/a/f0", 0o644).unwrap();
    c.close(&ctx, fh).unwrap();
    c.port().advance(2 * window);
    let fh = c.create(&ctx, "/a/f1", 0o644).unwrap();
    c.close(&ctx, fh).unwrap();
    assert_eq!(
        journal_len(&cl, donor),
        1,
        "donor's running txn rode the primary's grouped flight"
    );
}

#[test]
fn backpressure_stalls_seals_past_the_inflight_window() {
    // A slow (paper-cost) store makes each journal flush a long flight;
    // window 0 seals per mutation. With an in-flight bound of 1 every
    // seal must wait out the previous flight; with 8 they overlap.
    let elapsed = |max_inflight: usize| {
        let store = Arc::new(ObjectCluster::new(ClusterConfig::rados(
            ClusterSpec::aws_paper(),
        )));
        let config = ArkConfig::test_tiny()
            .with_journal_window(0)
            .with_async_commit(0, max_inflight);
        let cl = ArkCluster::new(config, store);
        let c = cl.client();
        let ctx = root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        let start = c.port().now();
        for i in 0..10 {
            let fh = c.create(&ctx, &format!("/d/f{i}"), 0o644).unwrap();
            c.close(&ctx, fh).unwrap();
        }
        c.port().now() - start
    };
    let narrow = elapsed(1);
    let wide = elapsed(8);
    assert!(
        narrow > wide,
        "in-flight bound 1 must stall behind journal flights \
         (narrow {narrow} ns vs wide {wide} ns)"
    );
}
