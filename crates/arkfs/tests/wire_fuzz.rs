//! Corruption-robustness fuzzing for the transport frame codec.
//!
//! Property: for every representative `OpRequest`/`OpResponse` frame,
//! (a) the unmodified frame round-trips exactly (byte-identical
//! re-encoding), (b) any truncation and any single bit-flip decodes to
//! a `WireError` — never a panic, never a silently different value
//! (CRC32 detects all single-bit errors and the length/checksum
//! trailer catches truncations), and (c) arbitrary garbage bytes never
//! panic the decoder.

use arkfs::meta::InodeRecord;
use arkfs::rpc::{OpBody, OpRequest, OpResponse};
use arkfs::wire::{from_frame, to_frame, WireError};
use arkfs_lease::FileLeaseDecision;
use arkfs_telemetry::TraceCtx;
use arkfs_vfs::{Acl, AclEntry, Credentials, DirEntry, FileType, FsError, SetAttr};
use proptest::prelude::*;

fn creds() -> Credentials {
    Credentials {
        uid: 501,
        gid: 20,
        groups: vec![20, 7, 99],
    }
}

fn rec(ino: u128) -> InodeRecord {
    let mut r = InodeRecord::new(ino, FileType::Regular, 0o640, 501, 20, 1_234_567);
    r.size = 4096;
    r.nlink = 2;
    r.acl = Acl::new(vec![AclEntry::user(77, 0o5)]);
    r
}

/// One representative request per `OpBody` variant (all 21).
fn request_pool() -> Vec<OpRequest> {
    let bodies = vec![
        OpBody::Lookup {
            dir: 2,
            name: "a.txt".into(),
        },
        OpBody::DirInode { dir: 2 },
        OpBody::Create {
            dir: 2,
            name: "new.bin".into(),
            rec: rec(0x77),
        },
        OpBody::AddSubdir {
            dir: 2,
            name: "sub".into(),
            child: 0x99,
        },
        OpBody::Unlink {
            dir: 2,
            name: "gone".into(),
        },
        OpBody::RemoveSubdir {
            dir: 2,
            name: "sub".into(),
        },
        OpBody::Readdir {
            dir: 2,
            partition: 3,
        },
        OpBody::SetSize {
            dir: 2,
            name: "f".into(),
            ino: 0x77,
            size: 1 << 20,
        },
        OpBody::SetAttrChild {
            dir: 2,
            name: "f".into(),
            ino: 0x77,
            attr: SetAttr {
                mode: Some(0o600),
                uid: None,
                gid: Some(7),
                atime: None,
                mtime: Some(9),
            },
        },
        OpBody::SetAttrDir {
            dir: 2,
            attr: SetAttr::default(),
        },
        OpBody::SetAcl {
            dir: 2,
            name: String::new(),
            target: 2,
            acl: Acl::new(vec![AclEntry::user(1, 0o7), AclEntry::group(20, 0o4)]),
        },
        OpBody::RenameLocal {
            dir: 2,
            from: "old".into(),
            to: "new".into(),
        },
        OpBody::RenameSrcPrepare {
            dir: 2,
            name: "x".into(),
            txid: 0xDEAD_BEEF,
            peer: 5,
        },
        OpBody::RenameDstPrepare {
            dir: 5,
            name: "x".into(),
            txid: 0xDEAD_BEEF,
            peer: 2,
            ino: 0x77,
            ftype: FileType::Symlink,
            rec: Some(rec(0x77)),
        },
        OpBody::RenameDecide {
            dir: 2,
            name: "x".into(),
            txid: 0xDEAD_BEEF,
            commit: false,
            undo: Some(("x".into(), 0x77, FileType::Regular, Some(rec(0x77)))),
        },
        OpBody::AcquireReadLease {
            dir: 2,
            file: 0x77,
            client: arkfs_netsim::NodeId(4),
        },
        OpBody::AcquireWriteLease {
            dir: 2,
            file: 0x77,
            client: arkfs_netsim::NodeId(4),
        },
        OpBody::ReleaseFileLease {
            dir: 2,
            file: 0x77,
            client: arkfs_netsim::NodeId(4),
        },
        OpBody::FlushCache { file: 0x77 },
        OpBody::FsyncDir {
            dir: 2,
            partition: 0,
        },
        OpBody::RelinquishPartition {
            dir: 2,
            partition: 1,
        },
    ];
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| OpRequest {
            creds: creds(),
            trace: if i % 2 == 0 {
                TraceCtx::root(0x1000 + i as u64, true)
            } else {
                TraceCtx::NONE
            },
            body,
        })
        .collect()
}

/// One representative response per `OpResponse` variant (all 9), plus
/// an extra with string-carrying errors.
fn response_pool() -> Vec<OpResponse> {
    vec![
        OpResponse::Entry {
            ino: 0x77,
            ftype: FileType::Regular,
            rec: Some(rec(0x77)),
        },
        OpResponse::Inode(rec(0x42)),
        OpResponse::Entries {
            entries: vec![
                DirEntry {
                    name: "a".into(),
                    ino: 3,
                    ftype: FileType::Directory,
                },
                DirEntry {
                    name: "b.txt".into(),
                    ino: 4,
                    ftype: FileType::Regular,
                },
            ],
            partitions: 4,
        },
        OpResponse::Detached {
            ino: 0x77,
            ftype: FileType::Symlink,
            rec: None,
        },
        OpResponse::Lease(FileLeaseDecision::Granted {
            expires_at: 5_000_000,
        }),
        OpResponse::Flushed { size: Some(8192) },
        OpResponse::Ok,
        OpResponse::NotLeader,
        OpResponse::Err(FsError::NotFound),
        OpResponse::Err(FsError::Io("disk on fire".into())),
    ]
}

/// All the frames the properties below mutate.
fn frame_pool() -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = request_pool().iter().map(to_frame).collect();
    frames.extend(response_pool().iter().map(to_frame));
    frames
}

fn expect_decode_error(kind: &str, frame: &[u8], is_request: bool) {
    let err = if is_request {
        from_frame::<OpRequest>(frame).err()
    } else {
        from_frame::<OpResponse>(frame).err()
    };
    match err {
        Some(WireError::Truncated | WireError::Invalid(_) | WireError::BadChecksum) => {}
        Some(other) => panic!("{kind}: unexpected error class {other:?}"),
        None => panic!("{kind}: corrupt frame decoded successfully"),
    }
}

#[test]
fn valid_frames_round_trip_exactly() {
    for (i, req) in request_pool().iter().enumerate() {
        let frame = to_frame(req);
        let back: OpRequest =
            from_frame(&frame).unwrap_or_else(|e| panic!("request {i} failed to decode: {e}"));
        assert_eq!(to_frame(&back), frame, "request {i} re-encoding differs");
    }
    for (i, resp) in response_pool().iter().enumerate() {
        let frame = to_frame(resp);
        let back: OpResponse =
            from_frame(&frame).unwrap_or_else(|e| panic!("response {i} failed to decode: {e}"));
        assert_eq!(to_frame(&back), frame, "response {i} re-encoding differs");
    }
}

proptest! {
    /// Every proper prefix of a frame is a decode error, never a panic.
    #[test]
    fn truncations_error_cleanly(which in 0usize..31, cut in 0u32..10_000) {
        let frames = frame_pool();
        let n_requests = request_pool().len();
        let frame = &frames[which % frames.len()];
        let keep = frame.len() * cut as usize / 10_000; // strictly < len
        expect_decode_error("truncation", &frame[..keep], which % frames.len() < n_requests);
    }

    /// Every single bit-flip is a decode error (CRC32 guarantees it).
    #[test]
    fn bit_flips_error_cleanly(which in 0usize..31, pos in 0usize..4096, bit in 0u8..8) {
        let frames = frame_pool();
        let n_requests = request_pool().len();
        let idx = which % frames.len();
        let mut frame = frames[idx].clone();
        let p = pos % frame.len();
        frame[p] ^= 1 << bit;
        expect_decode_error("bit flip", &frame, idx < n_requests);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = from_frame::<OpRequest>(&bytes);
        let _ = from_frame::<OpResponse>(&bytes);
    }
}
