//! End-to-end tests for hot-directory sharding: partitioned dentry
//! leadership with per-partition journals.
//!
//! The load-bearing property: a partitioned directory is *semantically
//! invisible*. Random create/unlink/rename/readdir interleavings on a
//! partitioned cluster must produce the exact namespace an
//! unpartitioned reference cluster produces — including across a hard
//! crash whose takeover replays each partition's journal stream in
//! isolation, and across a crash landing at an arbitrary split
//! boundary.

use arkfs::partition::{partition_ino, PartitionMap};
use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, ObjectCluster, StoreProfile};
use arkfs_simkit::{Port, MSEC, SEC};
use arkfs_vfs::{Credentials, DirEntry, FileType, FsError, Vfs};
use proptest::prelude::*;
use std::sync::Arc;

/// `dentry_buckets` in `ArkConfig::test_tiny()` (partition ranges and
/// name routing in these tests are computed against it).
const BUCKETS: u64 = 4;

fn cluster_on(config: ArkConfig, s3: bool) -> Arc<ArkCluster> {
    let mut cfg = ClusterConfig::test_tiny();
    if s3 {
        cfg.profile = StoreProfile::s3(&cfg.spec);
    }
    ArkCluster::new(config, Arc::new(ObjectCluster::new(cfg)))
}

/// Async config whose seal window never fires on its own, so durability
/// is entirely in the hands of the explicit barriers under test.
fn async_wide_window() -> ArkConfig {
    ArkConfig::test_tiny().with_async_commit(10 * SEC, 8)
}

fn root() -> Credentials {
    Credentials::root()
}

/// Journal object count for one partition stream.
fn stream_len(cl: &Arc<ArkCluster>, dir: u128, p: u32) -> usize {
    cl.prt()
        .list_journal(&Port::new(), partition_ino(dir, p))
        .unwrap()
        .len()
}

fn names(c: &arkfs::ArkClient, ctx: &Credentials, path: &str) -> Vec<String> {
    c.readdir(ctx, path)
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect()
}

// ---- explicit split / merge lifecycle -----------------------------------------

#[test]
fn explicit_partitioning_preserves_namespace() {
    for s3 in [false, true] {
        let cl = cluster_on(async_wide_window(), s3);
        let c = cl.client();
        let ctx = root();
        c.mkdir(&ctx, "/d", 0o755).unwrap();
        for i in 0..24 {
            let fh = c.create(&ctx, &format!("/d/f{i:02}"), 0o644).unwrap();
            c.close(&ctx, fh).unwrap();
        }
        c.set_dir_partitions(&ctx, "/d", 4).unwrap();
        let (splits, _, handoffs, _) = c.partition_stats();
        assert_eq!(splits, 1, "one split installed");
        assert!(handoffs >= 1, "the old partition was handed off");

        // The merged readdir sees every slice, sorted, exactly once.
        let listed = names(&c, &ctx, "/d");
        assert_eq!(listed.len(), 24);
        assert!(listed.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");

        // Mutations keep working across partitions.
        for i in 0..24 {
            if i % 3 == 0 {
                c.unlink(&ctx, &format!("/d/f{i:02}")).unwrap();
            }
        }
        assert_eq!(names(&c, &ctx, "/d").len(), 16);
        assert_eq!(
            c.stat(&ctx, "/d/f01").unwrap().ino,
            c.readdir(&ctx, "/d").unwrap()[0].ino
        );

        // Merge back down to one partition; nothing is lost.
        c.set_dir_partitions(&ctx, "/d", 1).unwrap();
        let (_, merges, _, _) = c.partition_stats();
        assert_eq!(merges, 1);
        assert_eq!(names(&c, &ctx, "/d").len(), 16);
    }
}

#[test]
fn rmdir_of_partitioned_directory_merges_first() {
    let cl = cluster_on(async_wide_window(), false);
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    c.set_dir_partitions(&ctx, "/d", 4).unwrap();
    // Place one entry in a *nonzero* partition: an emptiness check that
    // only consulted partition 0's table would wrongly remove /d.
    let pmap = PartitionMap {
        dir: c.stat(&ctx, "/d").unwrap().ino,
        epoch: 1,
        partitions: 4,
    };
    let hidden = (0..100)
        .map(|i| format!("n{i}"))
        .find(|n| pmap.partition_of_name(n, BUCKETS) != 0)
        .unwrap();
    let fh = c.create(&ctx, &format!("/d/{hidden}"), 0o644).unwrap();
    c.close(&ctx, fh).unwrap();
    assert_eq!(c.rmdir(&ctx, "/d"), Err(FsError::NotEmpty));
    c.unlink(&ctx, &format!("/d/{hidden}")).unwrap();
    c.rmdir(&ctx, "/d").unwrap();
    assert_eq!(c.stat(&ctx, "/d"), Err(FsError::NotFound));
    // The name is reusable and the dir comes back unpartitioned.
    c.mkdir(&ctx, "/d", 0o755).unwrap();
    assert!(names(&c, &ctx, "/d").is_empty());
}

#[test]
fn cross_partition_rename_is_atomic_and_survives_crash() {
    let cl = cluster_on(async_wide_window(), false);
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    c1.sync_all(&ctx).unwrap();
    let dir = c1.stat(&ctx, "/d").unwrap().ino;
    c1.set_dir_partitions(&ctx, "/d", 4).unwrap();
    let pmap = PartitionMap {
        dir,
        epoch: 1,
        partitions: 4,
    };
    // A source/destination pair hashing to different partitions: the
    // rename runs as a 2PC between two journal streams of one directory.
    let src = (0..100)
        .map(|i| format!("s{i}"))
        .find(|n| pmap.partition_of_name(n, BUCKETS) == 0)
        .unwrap();
    let dst = (0..100)
        .map(|i| format!("t{i}"))
        .find(|n| pmap.partition_of_name(n, BUCKETS) == 3)
        .unwrap();
    let fh = c1.create(&ctx, &format!("/d/{src}"), 0o644).unwrap();
    c1.close(&ctx, fh).unwrap();
    c1.rename(&ctx, &format!("/d/{src}"), &format!("/d/{dst}"))
        .unwrap();
    assert_eq!(c1.stat(&ctx, &format!("/d/{src}")), Err(FsError::NotFound));
    assert_eq!(c1.stat(&ctx, &format!("/d/{dst}")).unwrap().size, 0);
    // Both halves journaled durably (the 2PC commits through both
    // partitions' streams), so a hard crash keeps the moved entry.
    c1.sync_all(&ctx).unwrap();
    c1.crash();
    c2.port().advance(50 * MSEC);
    assert_eq!(names(&c2, &ctx, "/d"), vec![dst.clone()]);
    assert_eq!(c2.stat(&ctx, &format!("/d/{src}")), Err(FsError::NotFound));
}

// ---- load-triggered split -----------------------------------------------------

#[test]
fn sustained_append_rate_triggers_split() {
    // Split once the measured append rate exceeds 500/s; merges off.
    let cl = cluster_on(async_wide_window().with_dir_partitions(4, 500, 0), false);
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/hot", 0o755).unwrap();
    // ~1000 appends/s: one create per virtual millisecond. The rate
    // window is 10 ms, so a reading fires every ~10 creates and the
    // queued split applies on the next traced op.
    for i in 0..40 {
        let fh = c.create(&ctx, &format!("/hot/f{i:03}"), 0o644).unwrap();
        c.close(&ctx, fh).unwrap();
        c.port().advance(MSEC);
    }
    let (splits, _, _, _) = c.partition_stats();
    assert!(splits >= 1, "sustained load split the hot directory");
    assert_eq!(names(&c, &ctx, "/hot").len(), 40, "no entries lost");
    // The installed map is visible to a fresh client via the store: make
    // the acked state durable first, then let the leases lapse so the
    // fresh client takes over from the store alone.
    c.sync_all(&ctx).unwrap();
    let c2 = cl.client();
    c2.port().advance(50 * MSEC);
    assert_eq!(names(&c2, &ctx, "/hot").len(), 40);
}

#[test]
fn idle_partitioned_directory_merges_back() {
    // Merge when a closed window measures under 100 appends/s.
    let cl = cluster_on(async_wide_window().with_dir_partitions(4, 0, 100), false);
    let c = cl.client();
    let ctx = root();
    c.mkdir(&ctx, "/cool", 0o755).unwrap();
    c.set_dir_partitions(&ctx, "/cool", 4).unwrap();
    // Trickle mutations spaced far apart; those landing on partition 0
    // close low-rate windows and queue a merge.
    let mut merged = false;
    for i in 0..200 {
        let fh = c.create(&ctx, &format!("/cool/f{i:03}"), 0o644).unwrap();
        c.close(&ctx, fh).unwrap();
        c.port().advance(20 * MSEC);
        if c.partition_stats().1 >= 1 {
            merged = true;
            break;
        }
    }
    assert!(merged, "idle directory merged back down");
    assert!(!names(&c, &ctx, "/cool").is_empty());
}

// ---- crash at a split boundary ------------------------------------------------

fn split_crash_roundtrip(n_before: usize, n_after: usize, target: u32, s3: bool) {
    let cl = cluster_on(async_wide_window(), s3);
    let c1 = cl.client();
    let c2 = cl.client();
    let ctx = root();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    c1.sync_all(&ctx).unwrap();
    let dir = c1.stat(&ctx, "/d").unwrap().ino;
    let mut expect: Vec<String> = Vec::new();
    for i in 0..n_before {
        let name = format!("f{i:03}");
        let fh = c1.create(&ctx, &format!("/d/{name}"), 0o644).unwrap();
        c1.close(&ctx, fh).unwrap();
        expect.push(name);
    }
    // The split is the boundary: everything acked before it must be
    // checkpoint-durable once the new map installs (the drain-before-
    // install invariant), with no barrier from the workload itself.
    c1.set_dir_partitions(&ctx, "/d", target).unwrap();
    for p in 0..target {
        assert_eq!(
            stream_len(&cl, dir, p),
            0,
            "split checkpointed every pre-split stream (partition {p})"
        );
    }
    let mut last_fh = None;
    for i in 0..n_after {
        let name = format!("g{i:03}");
        let fh = c1.create(&ctx, &format!("/d/{name}"), 0o644).unwrap();
        if i + 1 == n_after {
            last_fh = Some(fh);
        } else {
            c1.close(&ctx, fh).unwrap();
        }
        expect.push(name);
    }
    if let Some(fh) = last_fh {
        // fsync of ONE handle barriers every partition lane, making all
        // post-split acks durable in their per-partition streams.
        c1.fsync(&ctx, fh).unwrap();
    }
    c1.crash();
    c2.port().advance(50 * MSEC);
    // Takeover replays each partition's own stream; the union is exact.
    expect.sort();
    assert_eq!(names(&c2, &ctx, "/d"), expect);
    for name in &expect {
        assert_eq!(c2.stat(&ctx, &format!("/d/{name}")).unwrap().size, 0);
    }
}

#[test]
fn crash_right_after_split_loses_nothing() {
    split_crash_roundtrip(13, 0, 4, false);
    split_crash_roundtrip(13, 0, 4, true);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn crash_at_arbitrary_split_boundary_replays_exactly(
        n_before in 0usize..16,
        n_after in 1usize..16,
        target in 2u32..=4,
        s3 in any::<bool>(),
    ) {
        split_crash_roundtrip(n_before, n_after, target, s3);
    }
}

// ---- partitioned namespace ≡ unpartitioned reference --------------------------

#[derive(Debug, Clone)]
enum NsOp {
    Create(String),
    Unlink(String),
    Rename(String, String),
    Readdir,
}

fn arb_ns_op() -> impl Strategy<Value = NsOp> {
    // Create appears twice: a namespace that mostly grows exercises the
    // cross-partition paths harder than one that stays near-empty.
    prop_oneof![
        "[a-h]{1,2}".prop_map(NsOp::Create),
        "[a-h]{1,2}".prop_map(NsOp::Create),
        "[a-h]{1,2}".prop_map(NsOp::Unlink),
        ("[a-h]{1,2}", "[a-h]{1,2}").prop_map(|(a, b)| NsOp::Rename(a, b)),
        Just(NsOp::Readdir),
    ]
}

fn entries(c: &arkfs::ArkClient, ctx: &Credentials) -> Vec<(String, u128, FileType)> {
    c.readdir(ctx, "/d")
        .unwrap()
        .into_iter()
        .map(|DirEntry { name, ino, ftype }| (name, ino, ftype))
        .collect()
}

/// Apply the same op tape to a partitioned cluster and an unpartitioned
/// reference, alternating between two clients on each, and require
/// byte-identical outcomes: every per-op result, every interleaved
/// readdir, the final namespace, and the namespace a fresh client
/// recovers after both clients crash.
fn run_oracle(ops: &[NsOp], partitions: u32, s3: bool) {
    let part = cluster_on(async_wide_window(), s3);
    let refc = cluster_on(async_wide_window(), s3);
    let ctx = root();
    let pc = [part.client(), part.client()];
    let rc = [refc.client(), refc.client()];
    pc[0].mkdir(&ctx, "/d", 0o755).unwrap();
    rc[0].mkdir(&ctx, "/d", 0o755).unwrap();
    pc[0].sync_all(&ctx).unwrap();
    rc[0].sync_all(&ctx).unwrap();
    pc[0].set_dir_partitions(&ctx, "/d", partitions).unwrap();
    for (i, op) in ops.iter().enumerate() {
        let (p, r) = (&pc[i % 2], &rc[i % 2]);
        match op {
            NsOp::Create(name) => {
                let path = format!("/d/{name}");
                let a = p
                    .create(&ctx, &path, 0o644)
                    .map(|fh| p.close(&ctx, fh).unwrap());
                let b = r
                    .create(&ctx, &path, 0o644)
                    .map(|fh| r.close(&ctx, fh).unwrap());
                assert_eq!(a, b, "create {name}");
            }
            NsOp::Unlink(name) => {
                let path = format!("/d/{name}");
                assert_eq!(
                    p.unlink(&ctx, &path),
                    r.unlink(&ctx, &path),
                    "unlink {name}"
                );
            }
            NsOp::Rename(from, to) => {
                let (f, t) = (format!("/d/{from}"), format!("/d/{to}"));
                assert_eq!(
                    p.rename(&ctx, &f, &t),
                    r.rename(&ctx, &f, &t),
                    "rename {from} -> {to}"
                );
            }
            NsOp::Readdir => {
                assert_eq!(entries(p, &ctx), entries(r, &ctx), "interleaved readdir");
            }
        }
    }
    let live = entries(&pc[0], &ctx);
    assert_eq!(live, entries(&rc[0], &ctx), "final namespace");
    // Durability equivalence: barrier on every client (each makes its
    // own acked ops durable), crash every client, and let a fresh one
    // recover each side from its journal streams alone.
    pc[0].sync_all(&ctx).unwrap();
    pc[1].sync_all(&ctx).unwrap();
    rc[0].sync_all(&ctx).unwrap();
    rc[1].sync_all(&ctx).unwrap();
    pc[0].crash();
    pc[1].crash();
    rc[0].crash();
    rc[1].crash();
    let (p3, r3) = (part.client(), refc.client());
    p3.port().advance(50 * MSEC);
    r3.port().advance(50 * MSEC);
    let recovered = entries(&p3, &ctx);
    assert_eq!(recovered, entries(&r3, &ctx), "recovered namespace");
    assert_eq!(recovered, live, "recovery preserved the live namespace");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn partitioned_namespace_matches_reference_rados(
        ops in prop::collection::vec(arb_ns_op(), 1..60),
        partitions in 2u32..=4,
    ) {
        run_oracle(&ops, partitions, false);
    }

    #[test]
    fn partitioned_namespace_matches_reference_s3(
        ops in prop::collection::vec(arb_ns_op(), 1..40),
        partitions in 2u32..=4,
    ) {
        run_oracle(&ops, partitions, true);
    }
}
