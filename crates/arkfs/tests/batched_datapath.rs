//! Acceptance tests for the pipelined, batched data path: the PRT must
//! fan chunk I/O out in one batched store call — the caller pays the
//! slowest chunk, not the sum of all of them — instead of the serial
//! per-chunk loop the seed shipped with.

use arkfs::prt::Prt;
use arkfs_objstore::{ClusterConfig, ObjectCluster, ObjectKey, ObjectStore};
use arkfs_simkit::{ClusterSpec, Port};
use bytes::Bytes;
use std::sync::Arc;

const CHUNK: u64 = 64 * 1024;
const CHUNKS: u64 = 16;
const INO: u128 = 7;

fn fresh_cluster() -> Arc<ObjectCluster> {
    Arc::new(ObjectCluster::new(ClusterConfig::rados(
        ClusterSpec::aws_paper(),
    )))
}

fn payload() -> Vec<u8> {
    (0..CHUNK * CHUNKS).map(|i| (i / CHUNK + i) as u8).collect()
}

/// Populate a cluster with the 16-chunk file, then reset its timing
/// resources so the measured operation starts on an idle store.
fn populated_cluster() -> Arc<ObjectCluster> {
    let c = fresh_cluster();
    let setup = Port::new();
    let data = payload();
    for idx in 0..CHUNKS {
        let piece = &data[(idx * CHUNK) as usize..((idx + 1) * CHUNK) as usize];
        c.put(
            &setup,
            ObjectKey::data_chunk(INO, idx),
            Bytes::copy_from_slice(piece),
        )
        .unwrap();
    }
    c.reset_timelines();
    c
}

#[test]
fn batched_sequential_read_halves_serial_virtual_time() {
    // The seed's serial loop: one ranged GET per chunk, each paying its
    // own round trip.
    let c_serial = populated_cluster();
    let serial_port = Port::new();
    let mut serial_bytes = Vec::new();
    for idx in 0..CHUNKS {
        let b = c_serial
            .get_range(
                &serial_port,
                ObjectKey::data_chunk(INO, idx),
                0,
                CHUNK as usize,
            )
            .unwrap();
        serial_bytes.extend_from_slice(&b);
    }

    // The batched path through the PRT.
    let c_batched = populated_cluster();
    let prt = Prt::new(Arc::clone(&c_batched) as Arc<dyn ObjectStore>, CHUNK);
    let batched_port = Port::new();
    let mut buf = vec![0u8; (CHUNK * CHUNKS) as usize];
    let n = prt
        .read_data(&batched_port, INO, 0, &mut buf, CHUNK * CHUNKS)
        .unwrap();

    assert_eq!(n, buf.len());
    assert_eq!(buf, payload(), "batched read returns the file contents");
    assert_eq!(
        buf, serial_bytes,
        "batched and serial reads agree byte for byte"
    );
    assert!(
        batched_port.now() * 2 <= serial_port.now(),
        "batched read must take <= 1/2 the serial virtual time \
         (batched {} ns vs serial {} ns)",
        batched_port.now(),
        serial_port.now()
    );
}

#[test]
fn batched_sequential_write_halves_serial_virtual_time() {
    let data = payload();

    // The seed's serial loop: one ranged PUT per chunk.
    let c_serial = fresh_cluster();
    let serial_port = Port::new();
    for idx in 0..CHUNKS {
        let piece = &data[(idx * CHUNK) as usize..((idx + 1) * CHUNK) as usize];
        c_serial
            .put_range(
                &serial_port,
                ObjectKey::data_chunk(INO, idx),
                0,
                Bytes::copy_from_slice(piece),
            )
            .unwrap();
    }

    // The batched path through the PRT.
    let c_batched = fresh_cluster();
    let prt = Prt::new(Arc::clone(&c_batched) as Arc<dyn ObjectStore>, CHUNK);
    let batched_port = Port::new();
    prt.write_data(&batched_port, INO, 0, &data).unwrap();

    // Identical store contents afterwards.
    assert_eq!(c_batched.object_count(), c_serial.object_count());
    let check = Port::new();
    for idx in 0..CHUNKS {
        let key = ObjectKey::data_chunk(INO, idx);
        assert_eq!(
            c_batched.get(&check, key).unwrap(),
            c_serial.get(&check, key).unwrap(),
            "chunk {idx} differs between batched and serial writers"
        );
    }
    assert!(
        batched_port.now() * 2 <= serial_port.now(),
        "batched write must take <= 1/2 the serial virtual time \
         (batched {} ns vs serial {} ns)",
        batched_port.now(),
        serial_port.now()
    );
}

#[test]
fn truncate_and_delete_issue_one_batched_delete() {
    let cluster = fresh_cluster();
    let prt = Prt::new(Arc::clone(&cluster) as Arc<dyn ObjectStore>, CHUNK);
    let port = Port::new();
    prt.write_data(&port, INO, 0, &payload()).unwrap();
    let copies = cluster.config().replication;
    assert_eq!(cluster.object_count(), CHUNKS as usize * copies);

    // Truncating to a chunk boundary drops the 12 dead chunks in exactly
    // one delete_many.
    let (calls0, items0) = cluster.batch_stats();
    prt.truncate_data(&port, INO, CHUNK * CHUNKS, CHUNK * 4)
        .unwrap();
    let (calls1, items1) = cluster.batch_stats();
    assert_eq!(
        calls1 - calls0,
        1,
        "truncate must issue exactly one batched call"
    );
    assert_eq!(
        items1 - items0,
        12,
        "one delete per dead chunk, all in the batch"
    );
    assert_eq!(cluster.object_count(), 4 * copies);

    // Deleting the remaining 4-chunk file is one more delete_many.
    prt.delete_data(&port, INO, CHUNK * 4).unwrap();
    let (calls2, items2) = cluster.batch_stats();
    assert_eq!(
        calls2 - calls1,
        1,
        "delete must issue exactly one batched call"
    );
    assert_eq!(items2 - items1, 4);
    assert_eq!(cluster.object_count(), 0);
}
