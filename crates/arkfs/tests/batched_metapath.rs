//! Acceptance and differential tests for the batched metadata path:
//! metatable load (leader takeover), checkpoint, and journal recovery
//! must fan their object I/O out in batched store calls — paying the
//! slowest object instead of one round trip per object — while leaving
//! the store byte-identical to the seed's serial per-object loops.

use arkfs::journal::{DirJournal, JournalOp, Transaction};
use arkfs::meta::{dentry_bucket, DentryBlock, DentryEntry, InodeRecord};
use arkfs::metatable::{recover_directory, Metatable};
use arkfs::prt::Prt;
use arkfs::wire::WireError;
use arkfs_objstore::{ClusterConfig, KeyKind, ObjectCluster, ObjectKey, ObjectStore, StoreProfile};
use arkfs_simkit::{ClusterSpec, Port, SharedResource};
use arkfs_vfs::{FileType, FsError, Ino};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const DIR: Ino = 100;

fn dir_rec() -> InodeRecord {
    dir_rec_at(DIR)
}

fn dir_rec_at(ino: Ino) -> InodeRecord {
    InodeRecord::new(ino, FileType::Directory, 0o755, 0, 0, 0)
}

fn file_rec(ino: Ino) -> InodeRecord {
    InodeRecord::new(ino, FileType::Regular, 0o644, 0, 0, 0)
}

/// Every stored (key, bytes) pair, sorted by key; replicas dedupe.
fn store_contents(cluster: &Arc<ObjectCluster>) -> Vec<(ObjectKey, Bytes)> {
    let port = Port::new();
    cluster
        .list(&port, None, None)
        .unwrap()
        .into_iter()
        .map(|key| {
            let data = cluster.get(&port, key).unwrap();
            (key, data)
        })
        .collect()
}

/// The seed's serial recovery loop, kept as the reference the batched
/// [`recover_directory`] must agree with: one GET per journal object,
/// one GET per base-state object, one PUT/DELETE per written-back
/// object. Handles the four basic ops (no 2PC records — the callers
/// here never generate them). Returns (replayed, next_seq).
fn serial_recover(prt: &Prt, port: &Port, dir_ino: Ino, buckets: u64) -> (usize, u64) {
    let seqs = prt.list_journal(port, dir_ino).unwrap();
    let next_seq = seqs.last().map_or(0, |s| s + 1);
    let mut txns = Vec::new();
    for &s in &seqs {
        match prt.get_journal(port, dir_ino, s) {
            Ok(data) => match Transaction::unseal(&data) {
                Ok(t) => txns.push(t),
                Err(WireError::BadChecksum) | Err(WireError::Truncated) => {}
                Err(e) => panic!("reference recovery: {e:?}"),
            },
            Err(FsError::NotFound) => {}
            Err(e) => panic!("reference recovery: {e:?}"),
        }
    }
    txns.sort_by_key(|t| t.seq);
    if txns.is_empty() {
        return (0, next_seq);
    }
    let mut dir = match prt.load_inode(port, dir_ino) {
        Ok(rec) => Some(rec),
        Err(FsError::NotFound) => None,
        Err(e) => panic!("reference recovery: {e:?}"),
    };
    let mut dentries: HashMap<String, DentryEntry> = HashMap::new();
    for b in 0..buckets {
        for e in prt.load_bucket(port, dir_ino, b).unwrap().entries {
            dentries.insert(e.name.clone(), e);
        }
    }
    let mut put_inodes: HashMap<Ino, InodeRecord> = HashMap::new();
    let mut del_inodes: HashSet<Ino> = HashSet::new();
    for txn in &txns {
        for op in &txn.ops {
            match op {
                JournalOp::PutInode(rec) => {
                    if rec.ino == dir_ino {
                        dir = Some(rec.clone());
                    } else {
                        del_inodes.remove(&rec.ino);
                        put_inodes.insert(rec.ino, rec.clone());
                    }
                }
                JournalOp::DeleteInode(ino) => {
                    put_inodes.remove(ino);
                    del_inodes.insert(*ino);
                }
                JournalOp::UpsertDentry { name, ino, ftype } => {
                    dentries.insert(
                        name.clone(),
                        DentryEntry {
                            name: name.clone(),
                            ino: *ino,
                            ftype: *ftype,
                        },
                    );
                }
                JournalOp::RemoveDentry { name } => {
                    dentries.remove(name);
                }
                other => panic!("reference recovery: unexpected 2PC op {other:?}"),
            }
        }
    }
    if let Some(d) = &dir {
        prt.store_inode(port, d).unwrap();
    }
    for rec in put_inodes.values() {
        prt.store_inode(port, rec).unwrap();
    }
    for &ino in &del_inodes {
        prt.delete_inode(port, ino).unwrap();
    }
    for b in 0..buckets {
        prt.store_bucket(port, dir_ino, b, &bucket_of(&dentries, b, buckets))
            .unwrap();
    }
    for &s in &seqs {
        prt.delete_journal(port, dir_ino, s).unwrap();
    }
    (txns.len(), next_seq)
}

fn bucket_of(dentries: &HashMap<String, DentryEntry>, bucket: u64, buckets: u64) -> DentryBlock {
    let mut entries: Vec<DentryEntry> = dentries
        .values()
        .filter(|e| dentry_bucket(&e.name, buckets) == bucket)
        .cloned()
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    DentryBlock { entries }
}

// ---- acceptance: takeover and checkpoint halve the serial virtual time --------

mod acceptance {
    use super::*;

    const BUCKETS: u64 = 128;
    const ENTRIES: u64 = 1024;
    const EXTRA: u64 = 8;
    const CHUNK: u64 = 64 * 1024;

    fn rados_cluster() -> Arc<ObjectCluster> {
        Arc::new(ObjectCluster::new(ClusterConfig::rados(
            ClusterSpec::aws_paper(),
        )))
    }

    /// A flushed 1024-entry directory plus a few committed-but-not-
    /// checkpointed creates the crash leaves in the journal, so the next
    /// leader's takeover includes recovery. Timelines reset afterwards so
    /// the measured takeover starts on an idle store.
    fn populate(cluster: &Arc<ObjectCluster>) {
        let prt = Prt::new(Arc::clone(cluster) as Arc<dyn ObjectStore>, CHUNK);
        let port = Port::new();
        let lane = SharedResource::ideal("setup-lane");
        prt.store_inode(&port, &dir_rec()).unwrap();
        let mut mt = Metatable::fresh(dir_rec(), BUCKETS, 1000);
        for i in 0..ENTRIES {
            mt.create_child(file_rec(1000 + i as Ino), &format!("f{i:04}"), i)
                .unwrap();
        }
        mt.flush(&prt, &port, &lane, 0).unwrap();
        for i in 0..EXTRA {
            mt.create_child(file_rec(5000 + i as Ino), &format!("x{i}"), 2000 + i)
                .unwrap();
        }
        mt.journal.commit(&prt, &port, &lane, 0).unwrap();
        drop(mt); // crash before checkpoint
        cluster.reset_timelines();
    }

    /// The seed's serial takeover: serial recovery, then the double
    /// journal LIST to compute the resume point, then one GET per bucket
    /// and one GET per child inode.
    fn serial_takeover(
        prt: &Prt,
        port: &Port,
        dir_ino: Ino,
        buckets: u64,
    ) -> (
        InodeRecord,
        HashMap<String, DentryEntry>,
        HashMap<Ino, InodeRecord>,
    ) {
        serial_recover(prt, port, dir_ino, buckets);
        let _resume = prt
            .list_journal(port, dir_ino)
            .unwrap()
            .last()
            .map_or(0, |s| s + 1);
        let dir = prt.load_inode(port, dir_ino).unwrap();
        let mut dentries = HashMap::new();
        for b in 0..buckets {
            for e in prt.load_bucket(port, dir_ino, b).unwrap().entries {
                dentries.insert(e.name.clone(), e);
            }
        }
        let mut children = HashMap::new();
        for e in dentries.values() {
            if e.ftype != FileType::Directory {
                children.insert(e.ino, prt.load_inode(port, e.ino).unwrap());
            }
        }
        (dir, dentries, children)
    }

    #[test]
    fn takeover_of_1024_entry_directory_halves_serial_virtual_time() {
        let c_serial = rados_cluster();
        populate(&c_serial);
        let c_batched = rados_cluster();
        populate(&c_batched);

        let prt_serial = Prt::new(Arc::clone(&c_serial) as Arc<dyn ObjectStore>, CHUNK);
        let serial_port = Port::new();
        let (sdir, sdentries, schildren) = serial_takeover(&prt_serial, &serial_port, DIR, BUCKETS);

        let prt_batched = Prt::new(Arc::clone(&c_batched) as Arc<dyn ObjectStore>, CHUNK);
        let batched_port = Port::new();
        let mt = Metatable::load(&prt_batched, &batched_port, DIR, BUCKETS, 1000).unwrap();

        // Identical in-memory takeover results.
        assert_eq!(mt.len() as u64, ENTRIES + EXTRA);
        assert_eq!(mt.len(), sdentries.len());
        assert_eq!(mt.dir, sdir);
        for e in mt.readdir() {
            let s = &sdentries[&e.name];
            assert_eq!((s.ino, s.ftype), (e.ino, e.ftype), "dentry {}", e.name);
            assert_eq!(
                mt.child_inode(e.ino),
                schildren.get(&e.ino),
                "child inode {}",
                e.name
            );
        }
        // Identical store contents after the recovery write-back.
        assert_eq!(store_contents(&c_batched), store_contents(&c_serial));
        assert!(
            batched_port.now() * 2 <= serial_port.now(),
            "batched takeover must take <= 1/2 the serial virtual time \
             (batched {} ns vs serial {} ns)",
            batched_port.now(),
            serial_port.now()
        );
    }

    const CKPT_CHILDREN: u64 = 256;

    /// A directory with 256 dirty (never-checkpointed) children and one
    /// committed journal transaction, on a reset timeline.
    fn dirty_table(cluster: &Arc<ObjectCluster>) -> (Prt, Metatable) {
        let prt = Prt::new(Arc::clone(cluster) as Arc<dyn ObjectStore>, CHUNK);
        let port = Port::new();
        let lane = SharedResource::ideal("setup-lane");
        prt.store_inode(&port, &dir_rec()).unwrap();
        let mut mt = Metatable::fresh(dir_rec(), BUCKETS, 1000);
        for i in 0..CKPT_CHILDREN {
            mt.create_child(file_rec(1000 + i as Ino), &format!("c{i:03}"), i)
                .unwrap();
        }
        mt.journal.commit(&prt, &port, &lane, 0).unwrap();
        cluster.reset_timelines();
        (prt, mt)
    }

    #[test]
    fn checkpoint_of_dirty_children_halves_serial_virtual_time() {
        // The seed's serial checkpoint: one round trip per dirty object.
        let c_serial = rados_cluster();
        let (prt_s, mt_s) = dirty_table(&c_serial);
        let serial_port = Port::new();
        prt_s.store_inode(&serial_port, &mt_s.dir).unwrap();
        let entries: HashMap<String, DentryEntry> = mt_s
            .readdir()
            .into_iter()
            .map(|e| {
                (
                    e.name.clone(),
                    DentryEntry {
                        name: e.name,
                        ino: e.ino,
                        ftype: e.ftype,
                    },
                )
            })
            .collect();
        for e in entries.values() {
            prt_s
                .store_inode(&serial_port, mt_s.child_inode(e.ino).unwrap())
                .unwrap();
        }
        let dirty: HashSet<u64> = entries
            .values()
            .map(|e| dentry_bucket(&e.name, BUCKETS))
            .collect();
        for &b in &dirty {
            prt_s
                .store_bucket(&serial_port, DIR, b, &bucket_of(&entries, b, BUCKETS))
                .unwrap();
        }
        prt_s.delete_journal(&serial_port, DIR, 0).unwrap();

        // The batched checkpoint.
        let c_batched = rados_cluster();
        let (prt_b, mut mt_b) = dirty_table(&c_batched);
        let batched_port = Port::new();
        mt_b.checkpoint(&prt_b, &batched_port).unwrap();

        assert_eq!(store_contents(&c_batched), store_contents(&c_serial));
        assert!(
            batched_port.now() * 2 <= serial_port.now(),
            "batched checkpoint must take <= 1/2 the serial virtual time \
             (batched {} ns vs serial {} ns)",
            batched_port.now(),
            serial_port.now()
        );
    }
}

// ---- property: batched paths are byte-identical to the serial reference -------

const PBUCKETS: u64 = 4;

fn test_cluster(s3: bool) -> (Arc<ObjectCluster>, Prt) {
    let mut cfg = ClusterConfig::test_tiny();
    if s3 {
        cfg.profile = StoreProfile::s3(&cfg.spec);
    }
    let cluster = Arc::new(ObjectCluster::new(cfg));
    let prt = Prt::new(Arc::clone(&cluster) as Arc<dyn ObjectStore>, 64);
    (cluster, prt)
}

#[derive(Debug, Clone)]
enum RecOp {
    PutInode(u128, u64),
    DeleteInode(u128),
    Upsert(String, u128),
    Remove(String),
}

fn arb_rec_op() -> impl Strategy<Value = RecOp> {
    prop_oneof![
        (2u128..60, any::<u64>()).prop_map(|(i, s)| RecOp::PutInode(i, s)),
        (2u128..60).prop_map(RecOp::DeleteInode),
        ("[a-e]{1,3}", 2u128..60).prop_map(|(n, i)| RecOp::Upsert(n, i)),
        "[a-e]{1,3}".prop_map(RecOp::Remove),
    ]
}

fn to_journal_op(op: &RecOp) -> JournalOp {
    match op {
        RecOp::PutInode(ino, size) => {
            let mut rec = file_rec(*ino);
            rec.size = *size;
            JournalOp::PutInode(rec)
        }
        RecOp::DeleteInode(ino) => JournalOp::DeleteInode(*ino),
        RecOp::Upsert(name, ino) => JournalOp::UpsertDentry {
            name: name.clone(),
            ino: *ino,
            ftype: FileType::Regular,
        },
        RecOp::Remove(name) => JournalOp::RemoveDentry { name: name.clone() },
    }
}

/// Differential recovery: identical base state + journal stream (some
/// transactions torn) on two clusters; batched recovery on one, the
/// serial reference on the other; both must agree on what was replayed
/// and leave byte-identical stores.
fn run_recovery_case(
    base_inodes: &[(u128, u64)],
    base_dentries: &[(String, u128)],
    txns: &[(Vec<RecOp>, bool)],
    s3: bool,
) {
    let (c_a, prt_a) = test_cluster(s3);
    let (c_b, prt_b) = test_cluster(s3);
    let setup = Port::new();
    for prt in [&prt_a, &prt_b] {
        prt.store_inode(&setup, &dir_rec()).unwrap();
        for &(ino, size) in base_inodes {
            let mut rec = file_rec(ino);
            rec.size = size;
            prt.store_inode(&setup, &rec).unwrap();
        }
        let mut dentries: HashMap<String, DentryEntry> = HashMap::new();
        for (name, ino) in base_dentries {
            dentries.insert(
                name.clone(),
                DentryEntry {
                    name: name.clone(),
                    ino: *ino,
                    ftype: FileType::Regular,
                },
            );
        }
        for b in 0..PBUCKETS {
            let block = bucket_of(&dentries, b, PBUCKETS);
            if !block.entries.is_empty() {
                prt.store_bucket(&setup, DIR, b, &block).unwrap();
            }
        }
        for (seq, (ops, torn)) in txns.iter().enumerate() {
            let sealed = Transaction {
                dir: DIR,
                seq: seq as u64,
                ops: ops.iter().map(to_journal_op).collect(),
            }
            .seal();
            let bytes = if *torn {
                sealed.slice(..sealed.len().saturating_sub(3))
            } else {
                sealed
            };
            prt.put_journal(&setup, DIR, seq as u64, bytes).unwrap();
        }
    }

    let port_a = Port::new();
    let batched = recover_directory(&prt_a, &port_a, DIR, PBUCKETS).unwrap();
    let port_b = Port::new();
    let (replayed_s, next_s) = serial_recover(&prt_b, &port_b, DIR, PBUCKETS);

    assert_eq!(batched.replayed, replayed_s);
    assert_eq!(batched.next_seq, next_s);
    assert_eq!(store_contents(&c_a), store_contents(&c_b));
}

proptest! {
    #[test]
    fn batched_recovery_matches_sequential_reference_rados(
        base_inodes in prop::collection::vec((2u128..60, any::<u64>()), 0..8),
        base_dentries in prop::collection::vec(("[a-e]{1,3}", 2u128..60), 0..8),
        txns in prop::collection::vec((prop::collection::vec(arb_rec_op(), 1..6), any::<bool>()), 0..6),
    ) {
        run_recovery_case(&base_inodes, &base_dentries, &txns, false);
    }

    #[test]
    fn batched_recovery_matches_sequential_reference_s3(
        base_inodes in prop::collection::vec((2u128..60, any::<u64>()), 0..8),
        base_dentries in prop::collection::vec(("[a-e]{1,3}", 2u128..60), 0..8),
        txns in prop::collection::vec((prop::collection::vec(arb_rec_op(), 1..6), any::<bool>()), 0..6),
    ) {
        run_recovery_case(&base_inodes, &base_dentries, &txns, true);
    }
}

#[derive(Debug, Clone)]
enum LcOp {
    Create(String, u128),
    Unlink(String),
    Rename(String, String),
    SetSize(u8, u64),
    Subdir(String, u128),
    RmSubdir(String),
    Commit,
    Checkpoint,
}

fn arb_lc_op() -> impl Strategy<Value = LcOp> {
    prop_oneof![
        ("[a-f]{1,3}", 10u128..100).prop_map(|(n, i)| LcOp::Create(n, i)),
        "[a-f]{1,3}".prop_map(LcOp::Unlink),
        ("[a-f]{1,3}", "[a-f]{1,3}").prop_map(|(a, b)| LcOp::Rename(a, b)),
        (any::<u8>(), any::<u64>()).prop_map(|(s, z)| LcOp::SetSize(s, z)),
        ("[g-h]{1,2}", 200u128..250).prop_map(|(n, i)| LcOp::Subdir(n, i)),
        "[g-h]{1,2}".prop_map(LcOp::RmSubdir),
        Just(LcOp::Commit),
        Just(LcOp::Checkpoint),
    ]
}

/// Differential lifecycle: drive one metatable through a random op
/// sequence with interleaved commits and (batched) checkpoints, then
/// write the final durable state onto a second cluster with the serial
/// per-object primitives. The stores must be byte-identical, and a
/// batched reload must reproduce the in-memory table.
fn run_lifecycle_case(ops: &[LcOp], s3: bool) {
    let (c_a, prt_a) = test_cluster(s3);
    let port = Port::new();
    let lane = SharedResource::ideal("lane");
    prt_a.store_inode(&port, &dir_rec()).unwrap();
    let mut mt = Metatable::fresh(dir_rec(), PBUCKETS, 1000);
    for (t, op) in ops.iter().enumerate() {
        let now = t as u64;
        match op {
            LcOp::Create(name, base) => {
                // Unique ino per creation event.
                let rec = file_rec(base + 1000 * t as u128);
                let _ = mt.create_child(rec, name, now);
            }
            LcOp::Unlink(name) => {
                let _ = mt.unlink_child(name, now);
            }
            LcOp::Rename(from, to) => {
                if from != to {
                    let _ = mt.rename_local(from, to, now);
                }
            }
            LcOp::SetSize(sel, size) => {
                let files: Vec<Ino> = mt
                    .readdir()
                    .into_iter()
                    .filter(|e| e.ftype != FileType::Directory)
                    .map(|e| e.ino)
                    .collect();
                if !files.is_empty() {
                    mt.set_child_size(files[*sel as usize % files.len()], *size, now)
                        .unwrap();
                }
            }
            LcOp::Subdir(name, ino) => {
                let _ = mt.add_subdir(name, *ino, now);
            }
            LcOp::RmSubdir(name) => {
                let _ = mt.remove_subdir(name, now);
            }
            LcOp::Commit => {
                mt.journal.commit(&prt_a, &port, &lane, 0).unwrap();
            }
            LcOp::Checkpoint => {
                mt.journal.commit(&prt_a, &port, &lane, 0).unwrap();
                mt.checkpoint(&prt_a, &port).unwrap();
            }
        }
    }
    mt.journal.commit(&prt_a, &port, &lane, 0).unwrap();
    mt.checkpoint(&prt_a, &port).unwrap();
    assert!(mt.journal.is_quiescent());

    // Serial reference: the final durable state, one object at a time.
    // (A clean object's stored bytes always equal its current encoding,
    // so writing everything live reproduces the incremental result.)
    let (c_b, prt_b) = test_cluster(s3);
    let port_b = Port::new();
    prt_b.store_inode(&port_b, &mt.dir).unwrap();
    let entries: HashMap<String, DentryEntry> = mt
        .readdir()
        .into_iter()
        .map(|e| {
            (
                e.name.clone(),
                DentryEntry {
                    name: e.name,
                    ino: e.ino,
                    ftype: e.ftype,
                },
            )
        })
        .collect();
    for e in entries.values() {
        if e.ftype != FileType::Directory {
            prt_b
                .store_inode(&port_b, mt.child_inode(e.ino).unwrap())
                .unwrap();
        }
    }
    for b in 0..PBUCKETS {
        let block = bucket_of(&entries, b, PBUCKETS);
        if !block.entries.is_empty() {
            prt_b.store_bucket(&port_b, DIR, b, &block).unwrap();
        }
    }
    assert_eq!(store_contents(&c_a), store_contents(&c_b));

    // A batched reload reproduces the table.
    let loaded = Metatable::load(&prt_a, &port, DIR, PBUCKETS, 1000).unwrap();
    assert_eq!(loaded.dir, mt.dir);
    assert_eq!(loaded.readdir(), mt.readdir());
    for e in loaded.readdir() {
        assert_eq!(loaded.child_inode(e.ino), mt.child_inode(e.ino));
    }
}

proptest! {
    #[test]
    fn batched_lifecycle_matches_sequential_reference_rados(
        ops in prop::collection::vec(arb_lc_op(), 1..60),
    ) {
        run_lifecycle_case(&ops, false);
    }

    #[test]
    fn batched_lifecycle_matches_sequential_reference_s3(
        ops in prop::collection::vec(arb_lc_op(), 1..60),
    ) {
        run_lifecycle_case(&ops, true);
    }
}

// ---- property: crashes at seal/commit boundaries match the sync pipeline ------

/// Store contents with journal objects filtered out: a crash can leave a
/// torn, never-acknowledged journal tail that recovery skips and only
/// truncates lazily, so namespace equivalence is judged on the durable
/// home objects (inodes and dentry buckets).
fn namespace_contents(cluster: &Arc<ObjectCluster>) -> Vec<(ObjectKey, Bytes)> {
    store_contents(cluster)
        .into_iter()
        .filter(|(k, _)| k.kind != KeyKind::Journal)
        .collect()
}

const LANES: usize = 2;

/// Differential crash test for the async commit pipeline. Each directory
/// gets a stream of transaction batches driven through the real
/// [`DirJournal`] seal/flush machinery on its (shared) commit lane:
/// `durable` batches are sealed and flushed before the crash, the next
/// batch is optionally caught mid-append (torn bytes in the store), and
/// later batches never seal. The sync-mode reference commits exactly the
/// durable prefix on a second cluster. After per-directory recovery both
/// namespaces must be byte-identical.
fn run_seal_crash_case(dirs: &[(Vec<Vec<RecOp>>, usize, bool)], s3: bool) {
    let (c_a, prt_a) = test_cluster(s3);
    let (c_b, prt_b) = test_cluster(s3);
    let port = Port::new();
    let lanes: Vec<SharedResource> = (0..LANES)
        .map(|_| SharedResource::ideal("commit-lane"))
        .collect();
    for (i, (batches, durable_raw, torn)) in dirs.iter().enumerate() {
        let dir = DIR + i as Ino;
        let lane = &lanes[i % LANES];
        let durable = durable_raw % (batches.len() + 1);
        for prt in [&prt_a, &prt_b] {
            prt.store_inode(&port, &dir_rec_at(dir)).unwrap();
        }

        // Async pipeline up to the crash.
        let mut j = DirJournal::new(dir, 0);
        for ops in &batches[..durable] {
            for (k, op) in ops.iter().enumerate() {
                j.append(to_journal_op(op), k as u64);
            }
            j.seal();
            j.flush_sealed(&prt_a, &port, lane, 0).unwrap();
        }
        if *torn && durable < batches.len() {
            let txn = Transaction {
                dir,
                seq: durable as u64,
                ops: batches[durable].iter().map(to_journal_op).collect(),
            };
            let sealed = txn.seal();
            prt_a
                .put_journal(
                    &port,
                    dir,
                    durable as u64,
                    sealed.slice(..sealed.len().saturating_sub(3)),
                )
                .unwrap();
        }

        // Sync reference: the durable prefix committed on the caller's
        // timeline; everything past the crash point never happened.
        let mut jr = DirJournal::new(dir, 0);
        for ops in &batches[..durable] {
            for (k, op) in ops.iter().enumerate() {
                jr.append(to_journal_op(op), k as u64);
            }
            jr.commit(&prt_b, &port, lane, 0).unwrap();
        }
    }

    for (i, (batches, durable_raw, _)) in dirs.iter().enumerate() {
        let dir = DIR + i as Ino;
        let durable = durable_raw % (batches.len() + 1);
        let ra = recover_directory(&prt_a, &Port::new(), dir, PBUCKETS).unwrap();
        let rb = recover_directory(&prt_b, &Port::new(), dir, PBUCKETS).unwrap();
        assert_eq!(
            ra.replayed, durable,
            "async side replays the durable prefix"
        );
        assert_eq!(rb.replayed, durable, "sync side replays the same prefix");
        assert!(ra.next_seq >= rb.next_seq, "torn tail may advance next_seq");
    }
    assert_eq!(namespace_contents(&c_a), namespace_contents(&c_b));
}

proptest! {
    #[test]
    fn async_seal_crash_recovers_to_sync_reference_rados(
        dirs in prop::collection::vec(
            (
                prop::collection::vec(prop::collection::vec(arb_rec_op(), 1..5), 1..5),
                any::<usize>(),
                any::<bool>(),
            ),
            2..4,
        ),
    ) {
        run_seal_crash_case(&dirs, false);
    }

    #[test]
    fn async_seal_crash_recovers_to_sync_reference_s3(
        dirs in prop::collection::vec(
            (
                prop::collection::vec(prop::collection::vec(arb_rec_op(), 1..5), 1..5),
                any::<usize>(),
                any::<bool>(),
            ),
            2..4,
        ),
    ) {
        run_seal_crash_case(&dirs, true);
    }
}

// ---- cross-directory rename 2PC caught between seal and durability ------------

/// Base state shared by the 2PC crash tests: `src` holds file "f" (9).
fn rename_base(prt: &Prt, port: &Port, src: Ino, dst: Ino) {
    for d in [src, dst] {
        prt.store_inode(port, &dir_rec_at(d)).unwrap();
    }
    prt.store_inode(port, &file_rec(9)).unwrap();
    let mut dentries = HashMap::new();
    dentries.insert(
        "f".to_string(),
        DentryEntry {
            name: "f".into(),
            ino: 9,
            ftype: FileType::Regular,
        },
    );
    let b = dentry_bucket("f", PBUCKETS);
    prt.store_bucket(port, src, b, &bucket_of(&dentries, b, PBUCKETS))
        .unwrap();
}

#[test]
fn rename_2pc_caught_mid_prepare_presumed_aborts() {
    let (_c, prt) = test_cluster(false);
    let port = Port::new();
    let (src, dst) = (DIR, DIR + 1);
    let lane = SharedResource::ideal("commit-lane");
    rename_base(&prt, &port, src, dst);

    // Crash point: the source prepare was sealed and flushed (durable),
    // the destination prepare was caught mid-append (torn bytes), and no
    // decision was journaled anywhere.
    let txid = 7777u128;
    let mut js = DirJournal::new(src, 0);
    js.append(
        JournalOp::RenamePrepare {
            txid,
            peer_dir: dst,
            ops: vec![JournalOp::RemoveDentry { name: "f".into() }],
        },
        0,
    );
    js.seal();
    js.flush_sealed(&prt, &port, &lane, 0).unwrap();
    let dst_prep = Transaction {
        dir: dst,
        seq: 0,
        ops: vec![JournalOp::RenamePrepare {
            txid,
            peer_dir: src,
            ops: vec![JournalOp::UpsertDentry {
                name: "f".into(),
                ino: 9,
                ftype: FileType::Regular,
            }],
        }],
    }
    .seal();
    prt.put_journal(&port, dst, 0, dst_prep.slice(..dst_prep.len() - 3))
        .unwrap();

    // Recovery: the undecided source prepare consults the peer journal,
    // finds no commit record (the torn prepare was never acknowledged),
    // and presumed-aborts — the file stays in the source directory.
    let src_table = Metatable::load(&prt, &port, src, PBUCKETS, 1000).unwrap();
    let dst_table = Metatable::load(&prt, &port, dst, PBUCKETS, 1000).unwrap();
    let entries = src_table.readdir();
    assert_eq!(entries.len(), 1);
    assert_eq!((entries[0].name.as_str(), entries[0].ino), ("f", 9));
    assert_eq!(src_table.child_inode(9), Some(&file_rec(9)));
    assert!(dst_table.readdir().is_empty());
}

#[test]
fn rename_2pc_commit_record_in_peer_journal_wins() {
    let (_c, prt) = test_cluster(false);
    let port = Port::new();
    let (src, dst) = (DIR, DIR + 1);
    let lane = SharedResource::ideal("commit-lane");
    rename_base(&prt, &port, src, dst);

    // Crash point: both prepares durable, the destination's commit
    // decision durable, the source's decision lost with its running
    // transaction. The peer journal proves the transaction committed.
    let txid = 8888u128;
    let mut js = DirJournal::new(src, 0);
    js.append(
        JournalOp::RenamePrepare {
            txid,
            peer_dir: dst,
            ops: vec![JournalOp::RemoveDentry { name: "f".into() }],
        },
        0,
    );
    js.seal();
    js.flush_sealed(&prt, &port, &lane, 0).unwrap();
    let mut jd = DirJournal::new(dst, 0);
    jd.append(
        JournalOp::RenamePrepare {
            txid,
            peer_dir: src,
            ops: vec![JournalOp::UpsertDentry {
                name: "f".into(),
                ino: 9,
                ftype: FileType::Regular,
            }],
        },
        0,
    );
    jd.append(JournalOp::RenameCommit { txid }, 1);
    jd.seal();
    jd.flush_sealed(&prt, &port, &lane, 0).unwrap();

    // The source recovers first (its consult must read the peer journal
    // before the destination's own recovery truncates it).
    let src_table = Metatable::load(&prt, &port, src, PBUCKETS, 1000).unwrap();
    let dst_table = Metatable::load(&prt, &port, dst, PBUCKETS, 1000).unwrap();
    assert!(
        src_table.readdir().is_empty(),
        "committed: source entry gone"
    );
    let entries = dst_table.readdir();
    assert_eq!(entries.len(), 1);
    assert_eq!((entries[0].name.as_str(), entries[0].ino), ("f", 9));
}
