//! Log-linear latency histograms.
//!
//! Values (virtual nanoseconds) are bucketed into 16 sub-buckets per
//! power of two: values below 16 get exact unit buckets, and every
//! octave `[2^h, 2^{h+1})` above that is split into 16 equal slices.
//! Relative quantile error is therefore bounded by 1/16 (~6%), and the
//! top bucket's upper bound is exactly `u64::MAX`, so out-of-range
//! values clamp instead of wrapping.
//!
//! Two forms share the bucket layout: [`LatencyHistogram`] is atomic
//! and lock-free for concurrent recording through a
//! [`crate::Registry`], while [`HistogramSnapshot`] is a plain value
//! type used for point-in-time reads, merging, and quantile queries.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` slices.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;

/// Total bucket count: 16 unit buckets + 16 slices for each of the 60
/// octaves `[2^4, 2^64)`.
pub const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Bucket index for a value. The top bucket absorbs `u64::MAX`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // 4..=63
    let sub = ((v >> (h - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (SUBS + (h - SUB_BITS) as usize * SUBS + sub).min(BUCKETS - 1)
}

/// Inclusive `(lo, hi)` value range covered by a bucket. The last
/// bucket's `hi` is exactly `u64::MAX`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUBS {
        return (idx as u64, idx as u64);
    }
    let j = idx - SUBS;
    let h = (j / SUBS) as u32 + SUB_BITS;
    let sub = (j % SUBS) as u64;
    let lo = (1u64 << h) + (sub << (h - SUB_BITS));
    let hi = lo + ((1u64 << (h - SUB_BITS)) - 1);
    (lo, hi)
}

fn saturating_add(cell: &AtomicU64, n: u64) {
    // fetch_update with a total closure never fails; saturating rather
    // than wrapping so counters pin at u64::MAX instead of rolling over.
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// Thread-safe log-linear histogram; recording is wait-free-ish
/// (CAS loops on saturation only).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (saturating on every internal counter).
    pub fn record(&self, v: u64) {
        saturating_add(&self.buckets[bucket_index(v)], 1);
        saturating_add(&self.count, 1);
        saturating_add(&self.sum, v);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for quantile queries and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Plain-value histogram with the same bucket layout; supports
/// recording, merging (associative and commutative), and quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn new() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample, clamped to the
    /// recorded maximum — so `quantile(a) <= quantile(b)` for `a <= b`
    /// and `quantile(1.0) == max()` always hold.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= rank {
                return bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_tile_the_u64_line() {
        // Every bucket's lo is the previous bucket's hi + 1, the first
        // bucket starts at 0, and the last ends at u64::MAX.
        assert_eq!(bucket_bounds(0).0, 0);
        for idx in 1..BUCKETS {
            assert_eq!(bucket_bounds(idx).0, bucket_bounds(idx - 1).1 + 1);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_matches_bounds() {
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            assert_eq!(bucket_index(lo + (hi - lo) / 2), idx);
        }
    }

    #[test]
    fn u64_max_clamps_to_top_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(0.5), u64::MAX);
        // sum saturates instead of wrapping
        assert_eq!(s.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut s = HistogramSnapshot::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            s.record(v);
        }
        let p50 = s.quantile(0.50);
        let p90 = s.quantile(0.90);
        let p99 = s.quantile(0.99);
        let p999 = s.quantile(0.999);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= s.max());
        assert_eq!(s.quantile(1.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = HistogramSnapshot::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut both = HistogramSnapshot::new();
        for v in 0..100u64 {
            a.record(v * 7);
            both.record(v * 7);
        }
        for v in 0..50u64 {
            b.record(v * 1_000);
            both.record(v * 1_000);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
    }
}
