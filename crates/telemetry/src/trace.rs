//! Virtual-time span tracer with Chrome `trace_event` export.
//!
//! Spans are complete events (`ph: "X"`) stamped with virtual
//! start/end nanoseconds and grouped onto tracks keyed by
//! `(pid, tid)`: pid identifies a subsystem (see the `PID_*`
//! constants), tid a timeline within it (client id, shard index, …).
//! Each track is a bounded ring — when full, the oldest span is
//! dropped and counted — so tracing is safe to leave on for arbitrary
//! run lengths. Virtual nanoseconds map to Chrome's microsecond `ts`
//! field as `ns / 1000` with three decimals, so Perfetto renders the
//! virtual timeline losslessly.
//!
//! Recording is gated on an atomic enable flag; when disabled (the
//! default) `record` is a single relaxed load.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Track group for client-side operation spans (tid = client node id).
pub const PID_CLIENT: u32 = 1;
/// Track group for object store spans (tid = shard index or [`BATCH_TID`]).
pub const PID_STORE: u32 = 2;
/// Track group for metadata spans (tid = directory ino low bits).
pub const PID_META: u32 = 3;
/// Track group for lease-manager spans.
pub const PID_LEASE: u32 = 4;
/// Synthetic tid under [`PID_STORE`] carrying whole-batch spans
/// (`store.get_many`, …) as opposed to per-shard service spans.
pub const BATCH_TID: u32 = u32::MAX;

/// Default per-track ring capacity.
pub const DEFAULT_TRACK_CAPACITY: usize = 16 * 1024;

/// One completed span on a `(pid, tid)` track, in virtual nanoseconds.
///
/// `name` is a `Cow` so the hot path (every call site in the stack
/// passes a `&'static str`) records without allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub pid: u32,
    pub tid: u32,
    pub name: Cow<'static, str>,
    pub cat: &'static str,
    pub start: u64,
    pub end: u64,
}

#[derive(Debug, Default)]
struct Track {
    buf: VecDeque<SpanEvent>,
}

/// Number of independent track-map locks. Tracks hash onto stripes by
/// `(pid, tid)`, so concurrent recorders (clients, shards) rarely
/// contend on the same mutex.
const STRIPES: usize = 64;

fn stripe_of(pid: u32, tid: u32) -> usize {
    let h = ((pid as u64) << 32 | tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 58) as usize % STRIPES
}

/// Bounded multi-track span recorder.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    capacity: usize,
    stripes: Vec<Mutex<HashMap<(u32, u32), Track>>>,
    process_names: Mutex<BTreeMap<u32, String>>,
    dropped: AtomicU64,
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACK_CAPACITY)
    }

    /// `capacity` bounds each `(pid, tid)` ring.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        Tracer {
            enabled: AtomicBool::new(false),
            capacity,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            process_names: Mutex::new(BTreeMap::new()),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Cheap gate for callers that want to skip stamping entirely.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Label a pid group in the exported trace (`process_name` metadata).
    pub fn name_process(&self, pid: u32, name: &str) {
        self.process_names.lock().insert(pid, name.to_string());
    }

    /// Record one completed span. No-op while disabled.
    pub fn record(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        start: u64,
        end: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let ev = SpanEvent {
            pid,
            tid,
            name: name.into(),
            cat,
            start,
            end: end.max(start),
        };
        let mut tracks = self.stripes[stripe_of(pid, tid)].lock();
        let track = tracks.entry((pid, tid)).or_default();
        if track.buf.len() == self.capacity {
            track.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        track.buf.push_back(ev);
    }

    /// Spans dropped to ring bounds so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All retained spans, deterministically ordered by
    /// `(pid, tid, start, end, name)`.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = Vec::new();
        for stripe in &self.stripes {
            let tracks = stripe.lock();
            out.extend(tracks.values().flat_map(|t| t.buf.iter().cloned()));
        }
        out.sort_by(|a, b| {
            (a.pid, a.tid, a.start, a.end, &a.name).cmp(&(b.pid, b.tid, b.start, b.end, &b.name))
        });
        out
    }

    /// Registered `pid → process name` labels.
    pub fn process_names(&self) -> BTreeMap<u32, String> {
        self.process_names.lock().clone()
    }

    /// Chrome `trace_event` JSON for this tracer's spans.
    pub fn chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        render_group(&mut out, &mut first, &self.process_names(), &events, 0);
        out.push_str("]}");
        out
    }

    /// Write [`Tracer::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Merge several tracers (e.g. one per benchmarked system) into one
/// Chrome trace, remapping pids so the groups don't collide; each
/// process is labelled `"{label} {process}"`.
pub fn merged_chrome_trace(groups: &[(&str, &Tracer)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (gi, (label, tracer)) in groups.iter().enumerate() {
        let base = (gi as u32) * 16;
        let events = tracer.events();
        let mut names = tracer.process_names();
        for ev in &events {
            names
                .entry(ev.pid)
                .or_insert_with(|| format!("pid{}", ev.pid));
        }
        let named: BTreeMap<u32, String> = names
            .into_iter()
            .map(|(pid, name)| (pid, format!("{label} {name}")))
            .collect();
        out.reserve(events.len() * 96);
        render_group(&mut out, &mut first, &named, &events, base);
    }
    out.push_str("]}");
    out
}

/// `ns / 1000` appended with three decimals: Chrome `ts`/`dur` are
/// microseconds, and three decimals keep nanosecond precision.
fn push_micros(out: &mut String, ns: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append one group's `process_name` metadata and span events to the
/// shared `traceEvents` array body (everything between `[` and `]`).
fn render_group(
    out: &mut String,
    first: &mut bool,
    process_names: &BTreeMap<u32, String>,
    events: &[SpanEvent],
    pid_base: u32,
) {
    use std::fmt::Write;
    for (pid, name) in process_names {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            pid_base + pid
        );
        push_escaped(out, name);
        out.push_str("\"}}");
    }
    for ev in events {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("{\"ph\":\"X\",\"name\":\"");
        push_escaped(out, &ev.name);
        out.push_str("\",\"cat\":\"");
        push_escaped(out, ev.cat);
        out.push_str("\",\"ts\":");
        push_micros(out, ev.start);
        out.push_str(",\"dur\":");
        push_micros(out, ev.end - ev.start);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}}}", pid_base + ev.pid, ev.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(PID_CLIENT, 0, "op.read", "op", 0, 10);
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(PID_CLIENT, 0, "op.read", "op", 0, 10);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(2);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(PID_STORE, 7, format!("s{i}"), "store", i * 10, i * 10 + 1);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "s3");
        assert_eq!(evs[1].name, "s4");
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn events_are_deterministically_ordered() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record(PID_STORE, 1, "b", "store", 50, 60);
        t.record(PID_CLIENT, 2, "c", "op", 0, 100);
        t.record(PID_CLIENT, 1, "a", "op", 10, 20);
        t.record(PID_CLIENT, 1, "a0", "op", 10, 15);
        let keys: Vec<(u32, u32, u64)> =
            t.events().iter().map(|e| (e.pid, e.tid, e.start)).collect();
        assert_eq!(keys, vec![(1, 1, 10), (1, 1, 10), (1, 2, 0), (2, 1, 50)]);
        // Ties broken by (end, name): shorter span first.
        assert_eq!(t.events()[0].name, "a0");
    }

    #[test]
    fn nested_spans_stay_within_parent() {
        // Concurrent timelines: four "clients" record parent + child
        // spans with deterministic virtual stamps from different
        // threads; the export must be identical regardless of thread
        // interleaving.
        let t = std::sync::Arc::new(Tracer::new());
        t.set_enabled(true);
        let mut handles = Vec::new();
        for tid in 0..4u32 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let base = tid as u64 * 1_000;
                t.record(PID_CLIENT, tid, "op.read", "op", base, base + 100);
                t.record(PID_CLIENT, tid, "cache.miss", "cache", base + 10, base + 90);
                t.record(
                    PID_CLIENT,
                    tid,
                    "store.get_many",
                    "store",
                    base + 20,
                    base + 80,
                );
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = t.events();
        assert_eq!(evs.len(), 12);
        for tid in 0..4u32 {
            let per: Vec<&SpanEvent> = evs.iter().filter(|e| e.tid == tid).collect();
            let parent = per.iter().find(|e| e.name == "op.read").unwrap();
            for child in per.iter().filter(|e| e.name != "op.read") {
                assert!(child.start >= parent.start && child.end <= parent.end);
            }
        }
        // Deterministic stamps ⇒ byte-identical export across runs.
        assert_eq!(t.chrome_trace(), t.chrome_trace());
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.name_process(PID_CLIENT, "clients");
        t.record(PID_CLIENT, 3, "op.write", "op", 1_234, 5_678);
        let json = t.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"args\":{\"name\":\"clients\"}"));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"op.write\",\"cat\":\"op\",\"ts\":1.234,\"dur\":4.444,\"pid\":1,\"tid\":3"));
    }

    #[test]
    fn merged_trace_remaps_pids() {
        let a = Tracer::new();
        a.set_enabled(true);
        a.name_process(PID_CLIENT, "clients");
        a.record(PID_CLIENT, 0, "op.read", "op", 0, 10);
        let b = Tracer::new();
        b.set_enabled(true);
        b.record(PID_STORE, 1, "shard.read", "store", 5, 9);
        let json = merged_chrome_trace(&[("arkfs", &a), ("s3fs", &b)]);
        assert!(json.contains("\"name\":\"arkfs clients\""));
        assert!(json.contains("\"pid\":1,"));
        assert!(json.contains("\"pid\":18,")); // second group: base 16 + PID_STORE
        assert!(json.contains("\"name\":\"s3fs pid2\""));
        assert!(json.ends_with("]}"));
    }
}
