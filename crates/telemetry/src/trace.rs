//! Virtual-time span tracer with Chrome `trace_event` export.
//!
//! Spans are complete events (`ph: "X"`) stamped with virtual
//! start/end nanoseconds and grouped onto tracks keyed by
//! `(pid, tid)`: pid identifies a subsystem (see the `PID_*`
//! constants), tid a timeline within it (client id, shard index, …).
//! Each track is a bounded ring — when full, the oldest span is
//! dropped and counted — so tracing is safe to leave on for arbitrary
//! run lengths. Virtual nanoseconds map to Chrome's microsecond `ts`
//! field as `ns / 1000` with three decimals, so Perfetto renders the
//! virtual timeline losslessly.
//!
//! Recording is gated on an atomic enable flag; when disabled (the
//! default) `record` is a single relaxed load.
//!
//! Spans are causally linked: every record call attaches the ambient
//! [`TraceCtx`] (see [`crate::ctx`]) installed by the originating
//! client op, so a store PUT or lease grant recorded deep in the
//! stack carries the `trace_id` of the op that caused it. Head-based
//! sampling ([`Tracer::set_sample_every`]) keeps traced runs
//! deterministic: whether an op is sampled depends only on its
//! per-client sequence number, never on wall clock or RNG state.

use crate::ctx::{self, TraceCtx};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Track group for client-side operation spans (tid = client node id).
pub const PID_CLIENT: u32 = 1;
/// Track group for object store spans (tid = shard index or [`BATCH_TID`]).
pub const PID_STORE: u32 = 2;
/// Track group for metadata spans (tid = directory ino low bits).
pub const PID_META: u32 = 3;
/// Track group for lease-manager spans.
pub const PID_LEASE: u32 = 4;
/// Synthetic tid under [`PID_STORE`] carrying whole-batch spans
/// (`store.get_many`, …) as opposed to per-shard service spans.
pub const BATCH_TID: u32 = u32::MAX;

/// Default per-track ring capacity.
pub const DEFAULT_TRACK_CAPACITY: usize = 16 * 1024;

/// One completed span on a `(pid, tid)` track, in virtual nanoseconds.
///
/// `name` is a `Cow` so the hot path (every call site in the stack
/// passes a `&'static str`) records without allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub pid: u32,
    pub tid: u32,
    pub name: Cow<'static, str>,
    pub cat: &'static str,
    pub start: u64,
    pub end: u64,
    /// Trace of the originating client op (0 = uncorrelated span).
    pub trace_id: u64,
    /// Enclosing span id; 0 marks the trace's root span.
    pub parent_span: u64,
    /// Recorded on the asynchronous durability path: a follow-from
    /// link, excluded from the op's ack critical path.
    pub follows: bool,
}

#[derive(Debug, Default)]
struct Track {
    buf: VecDeque<SpanEvent>,
}

/// Number of independent track-map locks. Tracks hash onto stripes by
/// `(pid, tid)`, so concurrent recorders (clients, shards) rarely
/// contend on the same mutex.
const STRIPES: usize = 64;

fn stripe_of(pid: u32, tid: u32) -> usize {
    let h = ((pid as u64) << 32 | tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 58) as usize % STRIPES
}

/// Bounded multi-track span recorder.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    /// Head-based sampling period: 0 records every span, N > 0 records
    /// only spans whose ambient [`TraceCtx`] carries the SAMPLED flag
    /// (set by the op allocator on every Nth op per client).
    sample_every: AtomicU64,
    capacity: usize,
    stripes: Vec<Mutex<HashMap<(u32, u32), Track>>>,
    process_names: Mutex<BTreeMap<u32, String>>,
    dropped: AtomicU64,
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACK_CAPACITY)
    }

    /// `capacity` bounds each `(pid, tid)` ring.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        Tracer {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(0),
            capacity,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            process_names: Mutex::new(BTreeMap::new()),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Cheap gate for callers that want to skip stamping entirely.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Head-based sampling period: with `every == 0` (the default)
    /// every span records; with `every == N > 0` only spans whose
    /// ambient [`TraceCtx`] is head-sampled record. The per-op
    /// sampling decision is made by the op allocator from its op
    /// sequence number (`seq % N == 0`), so it is deterministic across
    /// runs and independent of workload RNG streams.
    pub fn set_sample_every(&self, every: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Current sampling period (see [`Tracer::set_sample_every`]).
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Label a pid group in the exported trace (`process_name` metadata).
    pub fn name_process(&self, pid: u32, name: &str) {
        self.process_names.lock().insert(pid, name.to_string());
    }

    /// Record one completed span, causally attached to the calling
    /// thread's ambient [`TraceCtx`]. No-op while disabled; one
    /// relaxed load on the disabled path.
    pub fn record(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        start: u64,
        end: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.push(ctx::current(), pid, tid, name.into(), cat, start, end);
    }

    /// Record one completed span under an *explicit* context instead
    /// of the ambient one — used where the causal owner differs from
    /// the currently executing op (e.g. the follow-from durability
    /// span of a journal stamp landed by another op's group commit).
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_ctx(
        &self,
        ctx: TraceCtx,
        pid: u32,
        tid: u32,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        start: u64,
        end: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.push(ctx, pid, tid, name.into(), cat, start, end);
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        ctx: TraceCtx,
        pid: u32,
        tid: u32,
        name: Cow<'static, str>,
        cat: &'static str,
        start: u64,
        end: u64,
    ) {
        // With sampling active, only head-sampled contexts record;
        // context-free spans (setup paths outside any op) are skipped
        // too, keeping sampled span volume strictly bounded.
        if self.sample_every() > 0 && !ctx.sampled() {
            return;
        }
        let ev = SpanEvent {
            pid,
            tid,
            name,
            cat,
            start,
            end: end.max(start),
            trace_id: ctx.trace_id,
            parent_span: if ctx.is_none() { 0 } else { ctx.parent_span },
            follows: ctx.background(),
        };
        let mut tracks = self.stripes[stripe_of(pid, tid)].lock();
        let track = tracks.entry((pid, tid)).or_default();
        if track.buf.len() == self.capacity {
            track.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        track.buf.push_back(ev);
    }

    /// Spans dropped to ring bounds so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All retained spans, deterministically ordered by
    /// `(pid, tid, start, end, name)`.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = Vec::new();
        for stripe in &self.stripes {
            let tracks = stripe.lock();
            out.extend(tracks.values().flat_map(|t| t.buf.iter().cloned()));
        }
        out.sort_by(|a, b| {
            (a.pid, a.tid, a.start, a.end, &a.name).cmp(&(b.pid, b.tid, b.start, b.end, &b.name))
        });
        out
    }

    /// Registered `pid → process name` labels.
    pub fn process_names(&self) -> BTreeMap<u32, String> {
        self.process_names.lock().clone()
    }

    /// Chrome `trace_event` JSON for this tracer's spans.
    pub fn chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        render_group(&mut out, &mut first, &self.process_names(), &events, 0);
        out.push_str("]}");
        out
    }

    /// Write [`Tracer::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Merge several tracers (e.g. one per benchmarked system) into one
/// Chrome trace, remapping pids so the groups don't collide; each
/// process is labelled `"{label} {process}"`.
pub fn merged_chrome_trace(groups: &[(&str, &Tracer)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (gi, (label, tracer)) in groups.iter().enumerate() {
        let base = (gi as u32) * 16;
        let events = tracer.events();
        let mut names = tracer.process_names();
        for ev in &events {
            names
                .entry(ev.pid)
                .or_insert_with(|| format!("pid{}", ev.pid));
        }
        let named: BTreeMap<u32, String> = names
            .into_iter()
            .map(|(pid, name)| (pid, format!("{label} {name}")))
            .collect();
        out.reserve(events.len() * 96);
        render_group(&mut out, &mut first, &named, &events, base);
    }
    out.push_str("]}");
    out
}

/// `ns / 1000` appended with three decimals: Chrome `ts`/`dur` are
/// microseconds, and three decimals keep nanosecond precision.
fn push_micros(out: &mut String, ns: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append one group's `process_name` metadata and span events to the
/// shared `traceEvents` array body (everything between `[` and `]`).
fn render_group(
    out: &mut String,
    first: &mut bool,
    process_names: &BTreeMap<u32, String>,
    events: &[SpanEvent],
    pid_base: u32,
) {
    use std::fmt::Write;
    for (pid, name) in process_names {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            pid_base + pid
        );
        push_escaped(out, name);
        out.push_str("\"}}");
    }
    for ev in events {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("{\"ph\":\"X\",\"name\":\"");
        push_escaped(out, &ev.name);
        out.push_str("\",\"cat\":\"");
        push_escaped(out, ev.cat);
        out.push_str("\",\"ts\":");
        push_micros(out, ev.start);
        out.push_str(",\"dur\":");
        push_micros(out, ev.end - ev.start);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", pid_base + ev.pid, ev.tid);
        // Causal linkage rides in `args` so uncorrelated spans keep the
        // legacy shape byte for byte.
        if ev.trace_id != 0 {
            let _ = write!(
                out,
                ",\"args\":{{\"trace\":{},\"parent\":{},\"follows\":{}}}",
                ev.trace_id, ev.parent_span, ev.follows
            );
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(PID_CLIENT, 0, "op.read", "op", 0, 10);
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(PID_CLIENT, 0, "op.read", "op", 0, 10);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(2);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(PID_STORE, 7, format!("s{i}"), "store", i * 10, i * 10 + 1);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "s3");
        assert_eq!(evs[1].name, "s4");
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn events_are_deterministically_ordered() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.record(PID_STORE, 1, "b", "store", 50, 60);
        t.record(PID_CLIENT, 2, "c", "op", 0, 100);
        t.record(PID_CLIENT, 1, "a", "op", 10, 20);
        t.record(PID_CLIENT, 1, "a0", "op", 10, 15);
        let keys: Vec<(u32, u32, u64)> =
            t.events().iter().map(|e| (e.pid, e.tid, e.start)).collect();
        assert_eq!(keys, vec![(1, 1, 10), (1, 1, 10), (1, 2, 0), (2, 1, 50)]);
        // Ties broken by (end, name): shorter span first.
        assert_eq!(t.events()[0].name, "a0");
    }

    #[test]
    fn nested_spans_stay_within_parent() {
        // Concurrent timelines: four "clients" record parent + child
        // spans with deterministic virtual stamps from different
        // threads; the export must be identical regardless of thread
        // interleaving.
        let t = std::sync::Arc::new(Tracer::new());
        t.set_enabled(true);
        let mut handles = Vec::new();
        for tid in 0..4u32 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let base = tid as u64 * 1_000;
                t.record(PID_CLIENT, tid, "op.read", "op", base, base + 100);
                t.record(PID_CLIENT, tid, "cache.miss", "cache", base + 10, base + 90);
                t.record(
                    PID_CLIENT,
                    tid,
                    "store.get_many",
                    "store",
                    base + 20,
                    base + 80,
                );
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = t.events();
        assert_eq!(evs.len(), 12);
        for tid in 0..4u32 {
            let per: Vec<&SpanEvent> = evs.iter().filter(|e| e.tid == tid).collect();
            let parent = per.iter().find(|e| e.name == "op.read").unwrap();
            for child in per.iter().filter(|e| e.name != "op.read") {
                assert!(child.start >= parent.start && child.end <= parent.end);
            }
        }
        // Deterministic stamps ⇒ byte-identical export across runs.
        assert_eq!(t.chrome_trace(), t.chrome_trace());
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.name_process(PID_CLIENT, "clients");
        t.record(PID_CLIENT, 3, "op.write", "op", 1_234, 5_678);
        let json = t.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"args\":{\"name\":\"clients\"}"));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"op.write\",\"cat\":\"op\",\"ts\":1.234,\"dur\":4.444,\"pid\":1,\"tid\":3"));
    }

    #[test]
    fn ambient_ctx_attaches_to_recorded_spans() {
        use crate::ctx::{CtxGuard, TraceCtx};
        let t = Tracer::new();
        t.set_enabled(true);
        t.record(PID_CLIENT, 1, "op.free", "op", 0, 5);
        {
            let _g = CtxGuard::install(TraceCtx::root(99, true));
            t.record(PID_STORE, 2, "shard.write", "store", 1, 4);
            let _bg = CtxGuard::install(TraceCtx::root(99, true).as_background());
            t.record(PID_META, 3, "journal.commit", "meta", 2, 6);
        }
        let evs = t.events();
        let free = evs.iter().find(|e| e.name == "op.free").unwrap();
        assert_eq!(
            (free.trace_id, free.parent_span, free.follows),
            (0, 0, false)
        );
        let store = evs.iter().find(|e| e.name == "shard.write").unwrap();
        assert_eq!(
            (store.trace_id, store.parent_span, store.follows),
            (99, 99, false)
        );
        let meta = evs.iter().find(|e| e.name == "journal.commit").unwrap();
        assert!(meta.follows);
        assert_eq!(meta.trace_id, 99);
        // Causal linkage shows up in the export args.
        let json = t.chrome_trace();
        assert!(json.contains("\"args\":{\"trace\":99,\"parent\":99,\"follows\":true}"));
    }

    #[test]
    fn sampling_gates_unsampled_and_ctx_free_spans() {
        use crate::ctx::{CtxGuard, TraceCtx};
        let t = Tracer::new();
        t.set_enabled(true);
        t.set_sample_every(16);
        assert_eq!(t.sample_every(), 16);
        // No ambient ctx: skipped while sampling is active.
        t.record(PID_CLIENT, 1, "op.skip", "op", 0, 5);
        {
            // Unsampled ctx: skipped too.
            let _g = CtxGuard::install(TraceCtx::root(5, false));
            t.record(PID_CLIENT, 1, "op.unsampled", "op", 0, 5);
        }
        {
            let _g = CtxGuard::install(TraceCtx::root(6, true));
            t.record(PID_CLIENT, 1, "op.kept", "op", 0, 5);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "op.kept");
        // Explicit-ctx record respects the same gate.
        t.record_with_ctx(TraceCtx::root(7, false), PID_META, 1, "d", "meta", 0, 1);
        t.record_with_ctx(TraceCtx::root(8, true), PID_META, 1, "e", "meta", 0, 1);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn merged_trace_remaps_pids() {
        let a = Tracer::new();
        a.set_enabled(true);
        a.name_process(PID_CLIENT, "clients");
        a.record(PID_CLIENT, 0, "op.read", "op", 0, 10);
        let b = Tracer::new();
        b.set_enabled(true);
        b.record(PID_STORE, 1, "shard.read", "store", 5, 9);
        let json = merged_chrome_trace(&[("arkfs", &a), ("s3fs", &b)]);
        assert!(json.contains("\"name\":\"arkfs clients\""));
        assert!(json.contains("\"pid\":1,"));
        assert!(json.contains("\"pid\":18,")); // second group: base 16 + PID_STORE
        assert!(json.contains("\"name\":\"s3fs pid2\""));
        assert!(json.ends_with("]}"));
    }
}
