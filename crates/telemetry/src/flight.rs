//! Flight recorder: a bounded per-track ring of recent structured
//! events — op begin/end, retries, NotLeader redirects, lease
//! handoffs, commit rollbacks — kept cheap enough to leave on, and
//! dumped as JSON when something goes wrong (panic, property-test
//! failure) or on demand (`cli obs dump`).
//!
//! Tracks are keyed by client/node id. Each event carries the ambient
//! [`TraceCtx`] trace id, so a flight-recorder dump cross-references
//! the span graph of the same run. The disabled path is a single
//! relaxed atomic load, mirroring [`crate::Tracer`].

use crate::ctx::{self};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default per-track ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One structured flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual-time stamp (nanoseconds).
    pub t: u64,
    /// Event kind, e.g. `op.begin`, `lease.redirect`, `commit.retry`.
    pub kind: &'static str,
    /// Kind-specific scalar (op count, redirect target, retry seq, …).
    pub code: i64,
    /// Free-form label; `Cow` so hot sites pass statics without
    /// allocating.
    pub detail: Cow<'static, str>,
    /// Trace of the op in flight when the event fired (0 = none).
    pub trace_id: u64,
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<FlightEvent>,
}

/// Bounded multi-track structured event recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: usize,
    tracks: Mutex<BTreeMap<u32, Ring>>,
    /// Events overwritten by ring bounds before being dumped.
    truncated: AtomicU64,
}

impl FlightRecorder {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        FlightRecorder {
            enabled: AtomicBool::new(false),
            capacity,
            tracks: Mutex::new(BTreeMap::new()),
            truncated: AtomicU64::new(0),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Cheap gate; the disabled path of [`FlightRecorder::record`] is
    /// this one relaxed load.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event on `track` (client/node id), stamping the
    /// ambient trace id. No-op while disabled.
    pub fn record(
        &self,
        track: u32,
        t: u64,
        kind: &'static str,
        code: i64,
        detail: impl Into<Cow<'static, str>>,
    ) {
        if !self.enabled() {
            return;
        }
        let ev = FlightEvent {
            t,
            kind,
            code,
            detail: detail.into(),
            trace_id: ctx::current().trace_id,
        };
        let mut tracks = self.tracks.lock();
        let ring = tracks.entry(track).or_default();
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(ev);
    }

    /// Events overwritten by ring bounds so far.
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Retained events as `(track, event)`, ordered by track then
    /// recording order (deterministic for a deterministic run).
    pub fn events(&self) -> Vec<(u32, FlightEvent)> {
        let tracks = self.tracks.lock();
        tracks
            .iter()
            .flat_map(|(&track, ring)| ring.buf.iter().map(move |ev| (track, ev.clone())))
            .collect()
    }

    /// Deterministic JSON dump of every retained event, for panic
    /// handlers and `cli obs dump`.
    pub fn dump_json(&self) -> String {
        use std::fmt::Write;
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"flightEvents\":[");
        for (i, (track, ev)) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"track\":{track},\"t\":{},\"kind\":\"{}\",\"code\":{},\"detail\":\"",
                ev.t, ev.kind, ev.code
            );
            for c in ev.detail.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            let _ = write!(out, "\",\"trace\":{}}}", ev.trace_id);
        }
        let _ = write!(out, "],\"truncated\":{}}}", self.truncated());
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Dumps a flight recorder to stderr if the current thread is
/// panicking when the guard drops — wrap test bodies (especially
/// property tests, whose failures unwind through shrinking) so the
/// recent event history survives the failure.
pub struct FlightDumpGuard<'a> {
    recorder: &'a FlightRecorder,
    label: &'static str,
}

impl<'a> FlightDumpGuard<'a> {
    pub fn new(recorder: &'a FlightRecorder, label: &'static str) -> Self {
        FlightDumpGuard { recorder, label }
    }
}

impl Drop for FlightDumpGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "--- flight recorder dump ({}) ---\n{}",
                self.label,
                self.recorder.dump_json()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{CtxGuard, TraceCtx};

    #[test]
    fn disabled_recorder_records_nothing() {
        let f = FlightRecorder::new();
        f.record(1, 10, "op.begin", 0, "create");
        assert!(f.events().is_empty());
        f.set_enabled(true);
        f.record(1, 10, "op.begin", 0, "create");
        assert_eq!(f.events().len(), 1);
    }

    #[test]
    fn ring_truncates_oldest_and_counts() {
        let f = FlightRecorder::with_capacity(2);
        f.set_enabled(true);
        for i in 0..5i64 {
            f.record(3, i as u64, "op.begin", i, "x");
        }
        let evs = f.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].1.code, 3);
        assert_eq!(evs[1].1.code, 4);
        assert_eq!(f.truncated(), 3);
    }

    #[test]
    fn events_carry_ambient_trace_id() {
        let f = FlightRecorder::new();
        f.set_enabled(true);
        f.record(1, 0, "op.begin", 0, "free");
        {
            let _g = CtxGuard::install(TraceCtx::root(55, true));
            f.record(1, 5, "lease.redirect", 2, "leader=2");
        }
        let evs = f.events();
        assert_eq!(evs[0].1.trace_id, 0);
        assert_eq!(evs[1].1.trace_id, 55);
    }

    #[test]
    fn dump_json_shape_is_deterministic() {
        let f = FlightRecorder::new();
        f.set_enabled(true);
        f.record(2, 7, "commit.retry", 1, "dir=9 \"quoted\"");
        let json = f.dump_json();
        assert!(json.starts_with("{\"flightEvents\":["));
        assert!(json.contains(
            "{\"track\":2,\"t\":7,\"kind\":\"commit.retry\",\"code\":1,\
             \"detail\":\"dir=9 \\\"quoted\\\"\",\"trace\":0}"
        ));
        assert!(json.ends_with("],\"truncated\":0}"));
        assert_eq!(f.dump_json(), f.dump_json());
    }
}
