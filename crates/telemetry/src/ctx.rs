//! Causal trace context: the per-request identity that links every
//! span in the stack back to the client operation that caused it.
//!
//! A [`TraceCtx`] is allocated once per Vfs operation (head-based,
//! deterministic sampling — see [`crate::Tracer::set_sample_every`]),
//! carried in the RPC envelope across the simulated bus, stamped into
//! journal transactions, and installed as an *ambient* thread-local so
//! every `Tracer::record` call between install and drop is causally
//! attached without touching its call site. This works because the
//! simulator executes an operation — bus calls and background `Port`
//! forks included — synchronously on the op's host thread.
//!
//! Background durability (the sealed-commit flush that completes after
//! the op already acked) re-installs the ctx with the [`BACKGROUND`]
//! flag: spans recorded under it are *follow-from* links — causally
//! attributed to the op's trace but excluded from its ack critical
//! path (see [`crate::critpath`]).
//!
//! [`BACKGROUND`]: TraceCtx::BACKGROUND

use std::cell::Cell;

/// Compact causal context carried per request.
///
/// `trace_id == 0` means "no context" ([`TraceCtx::NONE`]): spans
/// record exactly as before this layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Identity of the originating client op's trace (0 = none).
    pub trace_id: u64,
    /// Span id of the enclosing span (the op's root span).
    pub parent_span: u64,
    /// [`TraceCtx::SAMPLED`] | [`TraceCtx::BACKGROUND`].
    pub flags: u8,
}

impl TraceCtx {
    /// This trace was head-sampled: record its spans even when
    /// sampling is active.
    pub const SAMPLED: u8 = 1;
    /// Executing on the asynchronous durability path: spans are
    /// follow-from links, not ack-critical children.
    pub const BACKGROUND: u8 = 2;

    /// The absent context.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
        flags: 0,
    };

    /// A fresh root context for trace `trace_id` (also used as the
    /// root span id), sampled or not.
    pub fn root(trace_id: u64, sampled: bool) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent_span: trace_id,
            flags: if sampled { Self::SAMPLED } else { 0 },
        }
    }

    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    pub fn sampled(&self) -> bool {
        self.flags & Self::SAMPLED != 0
    }

    pub fn background(&self) -> bool {
        self.flags & Self::BACKGROUND != 0
    }

    /// The same context with the follow-from bit set (entering the
    /// async durability path).
    pub fn as_background(&self) -> TraceCtx {
        TraceCtx {
            flags: self.flags | Self::BACKGROUND,
            ..*self
        }
    }
}

thread_local! {
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
}

/// The ambient context of the current thread ([`TraceCtx::NONE`] when
/// no op is in flight).
pub fn current() -> TraceCtx {
    CURRENT.with(|c| c.get())
}

/// RAII installer for the ambient context; restores the previous
/// context on drop so nested installs (op → RPC service → background
/// flush) unwind correctly.
#[derive(Debug)]
pub struct CtxGuard {
    prev: TraceCtx,
}

impl CtxGuard {
    /// Install `ctx` as the ambient context until the guard drops.
    pub fn install(ctx: TraceCtx) -> CtxGuard {
        let prev = CURRENT.with(|c| c.replace(ctx));
        CtxGuard { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(current(), TraceCtx::NONE);
        assert!(TraceCtx::default().is_none());
    }

    #[test]
    fn guard_installs_and_restores_nested() {
        let outer = TraceCtx::root(7, true);
        let g1 = CtxGuard::install(outer);
        assert_eq!(current(), outer);
        {
            let inner = outer.as_background();
            let _g2 = CtxGuard::install(inner);
            assert!(current().background());
            assert!(current().sampled());
            assert_eq!(current().trace_id, 7);
        }
        assert_eq!(current(), outer);
        drop(g1);
        assert_eq!(current(), TraceCtx::NONE);
    }

    #[test]
    fn root_ctx_uses_trace_id_as_parent_span() {
        let c = TraceCtx::root(42, false);
        assert_eq!(c.parent_span, 42);
        assert!(!c.sampled());
        assert!(!c.background());
        assert!(!c.is_none());
    }

    #[test]
    fn ambient_is_per_thread() {
        let _g = CtxGuard::install(TraceCtx::root(9, true));
        std::thread::spawn(|| assert_eq!(current(), TraceCtx::NONE))
            .join()
            .unwrap();
        assert_eq!(current().trace_id, 9);
    }
}
