//! Named metrics registry: counters, gauges, latency histograms.
//!
//! Metric names follow `subsystem.verb.unit` (e.g. `store.put.count`,
//! `cache.hit.count`, `op.read.latency_ns`). Handles are `Arc`s
//! resolved once and then updated lock-free; the registry maps are
//! only locked on handle resolution and on [`Registry::snapshot`].

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone event counter with saturating (never wrapping) adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (queue depths, resident entries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time value of one metric in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// One registry per simulated deployment; every subsystem resolves its
/// handles from the same instance so `snapshot()` sees the whole stack.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut m = self.histograms.lock();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// Preregister one histogram per entry in `names` (each registered
    /// as `{name}{suffix}`) and return a lock-free handle set keyed by
    /// the bare `name`. Hot paths that record into a fixed family of
    /// histograms (e.g. one per Vfs op) resolve their handles once at
    /// construction instead of taking the registry lock per record.
    pub fn histogram_set(&self, names: &[&'static str], suffix: &str) -> HistogramSet {
        HistogramSet {
            map: names
                .iter()
                .map(|&name| (name, self.histogram(&format!("{name}{suffix}"))))
                .collect(),
        }
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let mut out: Vec<(String, MetricValue)> = Vec::new();
        for (k, v) in self.counters.lock().iter() {
            out.push((k.clone(), MetricValue::Counter(v.get())));
        }
        for (k, v) in self.gauges.lock().iter() {
            out.push((k.clone(), MetricValue::Gauge(v.get())));
        }
        for (k, v) in self.histograms.lock().iter() {
            out.push((k.clone(), MetricValue::Histogram(v.snapshot())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// An immutable bundle of histogram handles resolved once from a
/// [`Registry`] (see [`Registry::histogram_set`]). Lookups never lock.
#[derive(Debug)]
pub struct HistogramSet {
    map: HashMap<&'static str, Arc<LatencyHistogram>>,
}

impl HistogramSet {
    /// The preregistered histogram for `name`.
    ///
    /// # Panics
    /// Panics when `name` was not in the set passed to
    /// [`Registry::histogram_set`] — the set is meant for fixed,
    /// compile-time families of names, so an unknown name is a bug.
    pub fn get(&self, name: &'static str) -> &Arc<LatencyHistogram> {
        self.map
            .get(name)
            .unwrap_or_else(|| panic!("histogram {name:?} was not preregistered"))
    }

    /// Number of preregistered histograms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_u64_max() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        c.add(12345);
        assert_eq!(c.get(), u64::MAX, "counter pins at u64::MAX");
    }

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("store.put.count");
        let b = r.counter("store.put.count");
        a.add(3);
        b.add(4);
        assert_eq!(r.counter("store.put.count").get(), 7);
    }

    #[test]
    fn histogram_set_shares_registry_handles() {
        let r = Registry::new();
        let set = r.histogram_set(&["op.read", "op.write"], ".latency_ns");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        set.get("op.read").record(7);
        // The set's handle and a later registry resolution are the same
        // histogram.
        assert_eq!(r.histogram("op.read.latency_ns").snapshot().count(), 1);
        r.histogram("op.write.latency_ns").record(3);
        assert_eq!(set.get("op.write").snapshot().count(), 1);
    }

    #[test]
    #[should_panic(expected = "was not preregistered")]
    fn histogram_set_rejects_unknown_names() {
        let r = Registry::new();
        let set = r.histogram_set(&["op.read"], ".latency_ns");
        let _ = set.get("op.unknown");
    }

    #[test]
    fn snapshot_is_sorted_across_kinds() {
        let r = Registry::new();
        r.counter("z.last.count").inc();
        r.histogram("m.middle.latency_ns").record(5);
        r.gauge("a.first.depth").set(-2);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["a.first.depth", "m.middle.latency_ns", "z.last.count"]
        );
        assert_eq!(snap[0].1, MetricValue::Gauge(-2));
        assert_eq!(snap[2].1, MetricValue::Counter(1));
        match &snap[1].1 {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
