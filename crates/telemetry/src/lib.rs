//! Virtual-time telemetry for the ArkFS workspace.
//!
//! One [`Telemetry`] instance per simulated deployment bundles a
//! [`Registry`] of named counters/gauges/latency histograms, a
//! [`Tracer`] of causally-linked virtual-time spans exportable as
//! Chrome `trace_event` JSON (open in `chrome://tracing` or
//! Perfetto), and a [`FlightRecorder`] of recent structured events
//! for post-mortem debugging. All ride the simulation's virtual
//! clock: stamps are virtual nanoseconds supplied by callers, so a
//! given workload produces a deterministic trace, deterministic
//! histograms, and a deterministic flight log.
//!
//! Causal tracing: [`ctx`] carries a per-op [`TraceCtx`] through the
//! stack (ambient thread-local + RPC envelope), [`critpath`] walks
//! completed traces and attributes each op's ack latency to named
//! pipeline segments.

#![forbid(unsafe_code)]

pub mod critpath;
pub mod ctx;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod trace;

pub use ctx::{CtxGuard, TraceCtx};
pub use flight::{FlightDumpGuard, FlightEvent, FlightRecorder};
pub use hist::{bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use registry::{Counter, Gauge, HistogramSet, MetricValue, Registry};
pub use trace::{
    merged_chrome_trace, SpanEvent, Tracer, BATCH_TID, PID_CLIENT, PID_LEASE, PID_META, PID_STORE,
};

use std::sync::Arc;

/// Shared telemetry handle: the registry, the span tracer, and the
/// flight recorder.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub registry: Registry,
    pub tracer: Tracer,
    pub flight: FlightRecorder,
}

impl Telemetry {
    /// Fresh instance with the default process labels; tracing and
    /// flight recording start disabled.
    pub fn new() -> Arc<Self> {
        let t = Telemetry::default();
        t.tracer.name_process(PID_CLIENT, "clients");
        t.tracer.name_process(PID_STORE, "object store");
        t.tracer.name_process(PID_META, "metadata");
        t.tracer.name_process(PID_LEASE, "lease managers");
        Arc::new(t)
    }

    /// Publish the bounded-ring loss counters into the registry —
    /// `trace.dropped.count` (tracer ring overwrote unexported spans)
    /// and `trace.truncated.count` (flight recorder ring overwrote
    /// unexported events) — so registry snapshots (the `ablate`
    /// table) surface silent data loss. Call before snapshotting.
    pub fn publish_ring_losses(&self) {
        self.registry.counter("trace.dropped.count").add(
            self.tracer
                .dropped()
                .saturating_sub(self.registry.counter("trace.dropped.count").get()),
        );
        self.registry.counter("trace.truncated.count").add(
            self.flight
                .truncated()
                .saturating_sub(self.registry.counter("trace.truncated.count").get()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_losses_publish_idempotently() {
        let tel = Telemetry::new();
        tel.tracer.set_enabled(true);
        // Overflow a tiny flight ring via the default-capacity tracer?
        // Use the flight recorder directly: capacity is large, so force
        // the counters through publish twice and check idempotence.
        tel.publish_ring_losses();
        assert_eq!(tel.registry.counter("trace.dropped.count").get(), 0);
        tel.publish_ring_losses();
        assert_eq!(tel.registry.counter("trace.dropped.count").get(), 0);
        assert_eq!(tel.registry.counter("trace.truncated.count").get(), 0);
    }
}
