//! Virtual-time telemetry for the ArkFS workspace.
//!
//! One [`Telemetry`] instance per simulated deployment bundles a
//! [`Registry`] of named counters/gauges/latency histograms and a
//! [`Tracer`] of virtual-time spans exportable as Chrome
//! `trace_event` JSON (open in `chrome://tracing` or Perfetto).
//! Both ride the simulation's virtual clock: all stamps are virtual
//! nanoseconds supplied by callers, so a given workload produces a
//! deterministic trace and deterministic histograms.

#![forbid(unsafe_code)]

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use registry::{Counter, Gauge, HistogramSet, MetricValue, Registry};
pub use trace::{
    merged_chrome_trace, SpanEvent, Tracer, BATCH_TID, PID_CLIENT, PID_LEASE, PID_META, PID_STORE,
};

use std::sync::Arc;

/// Shared telemetry handle: the registry plus the span tracer.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub registry: Registry,
    pub tracer: Tracer,
}

impl Telemetry {
    /// Fresh instance with the default process labels; tracing starts
    /// disabled.
    pub fn new() -> Arc<Self> {
        let t = Telemetry::default();
        t.tracer.name_process(PID_CLIENT, "clients");
        t.tracer.name_process(PID_STORE, "object store");
        t.tracer.name_process(PID_META, "metadata");
        t.tracer.name_process(PID_LEASE, "lease managers");
        Arc::new(t)
    }
}
