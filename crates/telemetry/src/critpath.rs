//! Critical-path attribution over completed causal traces.
//!
//! Walks the span graph of each trace (all [`SpanEvent`]s sharing a
//! `trace_id`) and partitions the root op's ack window — exactly, to
//! the nanosecond — into named segments:
//!
//! | segment           | spans attributed to it                          |
//! |-------------------|--------------------------------------------------|
//! | `lease_wait`      | `lease.*` waits/service, leader takeover/recover |
//! | `partition_route` | partition-map refresh after NotLeader/Stale      |
//! | `lane_queue`      | commit-lane admission backpressure (`lane.wait`)  |
//! | `seal_flush`      | journal commit + checkpoint on the ack path      |
//! | `store_io`        | object-store round trips (`store.*`, `shard.*`)  |
//! | `client_cpu`      | residual: root window covered by no child span   |
//!
//! Overlapping children are resolved by fixed priority (`store_io`
//! highest), so each elementary interval of the root window is counted
//! once and the segment sum equals the root duration by construction.
//! Follow-from spans (`follows == true`, the asynchronous durability
//! path) are causally part of the trace but *excluded* from the ack
//! window: the op already acked when they ran.

use crate::trace::SpanEvent;
use std::collections::BTreeMap;

/// Segment names, in emission order. `client_cpu` is the residual and
/// always last.
pub const SEGMENTS: [&str; 6] = [
    "lease_wait",
    "partition_route",
    "lane_queue",
    "seal_flush",
    "store_io",
    "client_cpu",
];

/// Index of the residual segment in [`SEGMENTS`].
pub const CLIENT_CPU: usize = 5;

/// Map a span to its segment index in [`SEGMENTS`], or `None` for
/// spans that carry no attribution of their own (op roots, flight
/// markers).
pub fn segment_index(name: &str, cat: &str) -> Option<usize> {
    match (name, cat) {
        ("meta.takeover" | "meta.recover", _) => Some(0),
        (_, "lease") => Some(0),
        (_, "route") => Some(1),
        ("lane.wait", _) => Some(2),
        ("journal.commit" | "meta.checkpoint", _) => Some(3),
        (_, "durable") => Some(3),
        (_, "store" | "cache") => Some(4),
        _ => None,
    }
}

/// Overlap-resolution priority: when two child spans cover the same
/// instant, the instant is charged to the higher-priority segment
/// (the one closest to the hardware).
fn priority(seg: usize) -> u8 {
    match seg {
        4 => 5, // store_io
        2 => 4, // lane_queue
        3 => 3, // seal_flush
        0 => 2, // lease_wait
        1 => 1, // partition_route
        _ => 0,
    }
}

/// Exact partition of one trace's ack window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBreakdown {
    pub trace_id: u64,
    /// Name of the root span (the client op, e.g. `op.create`).
    pub root_name: String,
    /// Root span duration in virtual nanoseconds (ack latency).
    pub total: u64,
    /// Per-segment nanoseconds, indexed like [`SEGMENTS`];
    /// `segs.iter().sum() == total` always.
    pub segs: [u64; 6],
}

/// Analyze every complete trace in `events`: group by `trace_id`,
/// find the root span (`parent_span == 0`), and attribute its window.
/// Traces whose root was dropped from a bounded ring are skipped.
/// Results are sorted by `trace_id` (deterministic).
pub fn analyze(events: &[SpanEvent]) -> Vec<TraceBreakdown> {
    let mut traces: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for ev in events {
        if ev.trace_id != 0 {
            traces.entry(ev.trace_id).or_default().push(ev);
        }
    }
    let mut out = Vec::with_capacity(traces.len());
    for (trace_id, spans) in traces {
        let mut roots = spans.iter().filter(|s| s.parent_span == 0 && !s.follows);
        let root = match (roots.next(), roots.next()) {
            (Some(r), None) => *r,
            _ => continue, // root dropped, or ambiguous — incomplete trace
        };
        let mut segs = [0u64; 6];
        sweep(root, &spans, &mut segs);
        out.push(TraceBreakdown {
            trace_id,
            root_name: root.name.to_string(),
            total: root.end - root.start,
            segs,
        });
    }
    out
}

/// Priority sweep of the root window: each elementary interval between
/// child-span boundaries is charged to the highest-priority covering
/// segment, or to `client_cpu` when nothing covers it.
fn sweep(root: &SpanEvent, spans: &[&SpanEvent], segs: &mut [u64; 6]) {
    // Clip attributable, ack-path children to the root window.
    let mut children: Vec<(u64, u64, usize)> = Vec::new();
    let mut cuts: Vec<u64> = vec![root.start, root.end];
    for s in spans {
        if s.follows || s.parent_span == 0 {
            continue;
        }
        let Some(seg) = segment_index(&s.name, s.cat) else {
            continue;
        };
        let (a, b) = (s.start.max(root.start), s.end.min(root.end));
        if a < b {
            children.push((a, b, seg));
            cuts.push(a);
            cuts.push(b);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let seg = children
            .iter()
            .filter(|&&(ca, cb, _)| ca <= a && b <= cb)
            .map(|&(_, _, seg)| seg)
            .max_by_key(|&seg| priority(seg))
            .unwrap_or(CLIENT_CPU);
        segs[seg] += b - a;
    }
}

/// Per-op-name aggregate of [`TraceBreakdown`]s (sums, not means, so
/// callers can derive exact shares).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Aggregate {
    pub count: u64,
    pub total_ns: u64,
    pub segs_ns: [u64; 6],
}

impl Aggregate {
    /// Mean nanoseconds per op for segment `i`.
    pub fn mean_seg(&self, i: usize) -> f64 {
        self.segs_ns[i] as f64 / (self.count.max(1)) as f64
    }

    /// Mean total (ack) nanoseconds per op.
    pub fn mean_total(&self) -> f64 {
        self.total_ns as f64 / (self.count.max(1)) as f64
    }

    /// Share of the total attributed to segment `i` (0..=1).
    pub fn share(&self, i: usize) -> f64 {
        self.segs_ns[i] as f64 / (self.total_ns.max(1)) as f64
    }
}

/// Aggregate all complete traces by root span name.
pub fn aggregate(events: &[SpanEvent]) -> BTreeMap<String, Aggregate> {
    let mut out: BTreeMap<String, Aggregate> = BTreeMap::new();
    for b in analyze(events) {
        let agg = out.entry(b.root_name).or_default();
        agg.count += 1;
        agg.total_ns += b.total;
        for (dst, src) in agg.segs_ns.iter_mut().zip(b.segs) {
            *dst += src;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{CtxGuard, TraceCtx};
    use crate::trace::{Tracer, PID_CLIENT, PID_LEASE, PID_META, PID_STORE};

    fn record_trace(t: &Tracer, id: u64) {
        // Root 0..100; lease wait 5..25 (manager service 10..20 inside
        // it); store IO 30..60 overlapping journal.commit 50..70; lane
        // wait 70..80. Background durability span ignored.
        let ctx = TraceCtx::root(id, true);
        t.record_with_ctx(
            TraceCtx {
                parent_span: 0,
                ..ctx
            },
            PID_CLIENT,
            1,
            "op.create",
            "op",
            1000,
            1100,
        );
        let _g = CtxGuard::install(ctx);
        t.record(PID_CLIENT, 1, "lease.wait", "lease", 1005, 1025);
        t.record(PID_LEASE, 0, "lease.acquire", "lease", 1010, 1020);
        t.record(PID_STORE, 0, "store.put_many", "store", 1030, 1060);
        t.record(PID_META, 7, "journal.commit", "meta", 1050, 1070);
        t.record(PID_CLIENT, 1, "lane.wait", "lane", 1070, 1080);
        let _bg = CtxGuard::install(ctx.as_background());
        t.record(PID_META, 7, "journal.commit", "meta", 1200, 1300);
    }

    #[test]
    fn segment_sum_equals_root_duration_exactly() {
        let t = Tracer::new();
        t.set_enabled(true);
        record_trace(&t, 42);
        let bds = analyze(&t.events());
        assert_eq!(bds.len(), 1);
        let b = &bds[0];
        assert_eq!(b.root_name, "op.create");
        assert_eq!(b.total, 100);
        assert_eq!(b.segs.iter().sum::<u64>(), b.total);
        // lease 5..25 → 20; store 30..60 → 30; journal.commit 50..70
        // loses 50..60 to store_io (higher priority) → 10; lane 70..80
        // → 10; residual client_cpu = 100 - 70 = 30.
        assert_eq!(b.segs[0], 20, "lease_wait");
        assert_eq!(b.segs[4], 30, "store_io");
        assert_eq!(b.segs[3], 10, "seal_flush");
        assert_eq!(b.segs[2], 10, "lane_queue");
        assert_eq!(b.segs[5], 30, "client_cpu");
        assert_eq!(b.segs[1], 0, "partition_route");
    }

    #[test]
    fn follow_from_spans_are_excluded_from_ack_window() {
        let t = Tracer::new();
        t.set_enabled(true);
        let ctx = TraceCtx::root(7, true);
        t.record_with_ctx(
            TraceCtx {
                parent_span: 0,
                ..ctx
            },
            PID_CLIENT,
            1,
            "op.mkdir",
            "op",
            0,
            50,
        );
        let _bg = CtxGuard::install(ctx.as_background());
        // Durable flush overlapping the ack window must still not count.
        t.record(PID_STORE, 0, "store.put_many", "store", 10, 40);
        let b = &analyze(&t.events())[0];
        assert_eq!(b.segs[4], 0);
        assert_eq!(b.segs[CLIENT_CPU], 50);
    }

    #[test]
    fn traces_without_roots_are_skipped() {
        let t = Tracer::new();
        t.set_enabled(true);
        let _g = CtxGuard::install(TraceCtx::root(9, true));
        t.record(PID_STORE, 0, "shard.read", "store", 0, 10);
        assert!(analyze(&t.events()).is_empty());
    }

    #[test]
    fn aggregate_sums_per_op_name() {
        let t = Tracer::new();
        t.set_enabled(true);
        record_trace(&t, 1);
        record_trace(&t, 2);
        let aggs = aggregate(&t.events());
        let a = &aggs["op.create"];
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 200);
        assert_eq!(a.segs_ns.iter().sum::<u64>(), 200);
        assert!((a.mean_total() - 100.0).abs() < 1e-9);
        assert!((a.share(4) - 0.3).abs() < 1e-9);
        assert!((a.mean_seg(0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn segment_mapping_covers_span_taxonomy() {
        assert_eq!(segment_index("lease.acquire", "lease"), Some(0));
        assert_eq!(segment_index("meta.takeover", "meta"), Some(0));
        assert_eq!(segment_index("route.refresh", "route"), Some(1));
        assert_eq!(segment_index("lane.wait", "lane"), Some(2));
        assert_eq!(segment_index("journal.commit", "meta"), Some(3));
        assert_eq!(segment_index("op.create", "durable"), Some(3));
        assert_eq!(segment_index("store.get_many", "store"), Some(4));
        assert_eq!(segment_index("cache.miss", "cache"), Some(4));
        assert_eq!(segment_index("op.create", "op"), None);
    }
}
