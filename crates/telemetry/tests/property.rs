//! Property tests for the log-linear histogram: quantile correctness
//! against an exact sorted reference, and merge associativity.

use arkfs_telemetry::HistogramSnapshot;
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let mut s = HistogramSnapshot::new();
    for &v in values {
        s.record(v);
    }
    s
}

/// Exact quantile on a sorted copy: the `ceil(q·n)`-th smallest value.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantile_tracks_exact_sorted_reference(
        values in prop::collection::vec(0u64..1_000_000_000_000, 1..300),
        qs in prop::collection::vec(0u32..1001, 1..8),
    ) {
        let s = snapshot_of(&values);
        for q in qs.into_iter().map(|q| q as f64 / 1000.0) {
            let approx = s.quantile(q);
            let exact = exact_quantile(&values, q);
            // The histogram reports the bucket upper bound (clamped to
            // the recorded max), so it never under-reports, and the
            // log-linear layout (16 sub-buckets per octave) bounds the
            // overshoot at 1/16 relative.
            prop_assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            prop_assert!(
                approx - exact <= exact / 16 + 1,
                "q={q}: {approx} overshoots exact {exact} by more than 1/16"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max(
        values in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let s = snapshot_of(&values);
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(s.max(), max);
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= prev, "quantile not monotone at q={q}");
            prop_assert!(v <= max, "quantile {v} exceeds max {max} at q={q}");
            prev = v;
        }
        prop_assert_eq!(s.quantile(1.0), max);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
        c in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }
}
