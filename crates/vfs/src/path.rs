//! Path parsing and validation helpers shared by all implementations.
//!
//! Paths in this workspace are always absolute, `/`-separated, UTF-8, with
//! no `.`/`..` resolution performed by the file systems themselves (the
//! workloads only generate canonical paths, like the FUSE kernel driver
//! would after its own resolution).

use crate::error::{FsError, FsResult};

/// Maximum length of a single path component (POSIX `NAME_MAX`).
pub const MAX_NAME_LEN: usize = 255;

/// Maximum length of a whole path (POSIX `PATH_MAX`).
pub const MAX_PATH_LEN: usize = 4096;

/// Validate a single component name.
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name == "." || name == ".." {
        return Err(FsError::InvalidArgument);
    }
    if name.len() > MAX_NAME_LEN {
        return Err(FsError::NameTooLong);
    }
    if name.contains('/') || name.contains('\0') {
        return Err(FsError::InvalidArgument);
    }
    Ok(())
}

/// Split an absolute path into validated components. `/` yields `[]`.
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') || path.len() > MAX_PATH_LEN {
        return Err(FsError::InvalidArgument);
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        if comp.is_empty() {
            continue; // leading slash and duplicated slashes
        }
        validate_name(comp)?;
        out.push(comp);
    }
    Ok(out)
}

/// Split a path into (parent components, final name). Errors on `/` since
/// the root has no parent.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(FsError::InvalidArgument),
    }
}

/// Join components back into a canonical absolute path.
pub fn join(comps: &[&str]) -> String {
    if comps.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::with_capacity(comps.iter().map(|c| c.len() + 1).sum());
        for c in comps {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

/// True if `descendant` is `ancestor` itself or lies strictly below it.
/// Used to reject `rename("/a", "/a/b/c")`.
pub fn is_prefix_of(ancestor: &[&str], descendant: &[&str]) -> bool {
    descendant.len() >= ancestor.len() && &descendant[..ancestor.len()] == ancestor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_components() {
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("//").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn relative_paths_rejected() {
        assert_eq!(components("a/b"), Err(FsError::InvalidArgument));
        assert_eq!(components(""), Err(FsError::InvalidArgument));
    }

    #[test]
    fn dot_components_rejected() {
        assert_eq!(components("/a/./b"), Err(FsError::InvalidArgument));
        assert_eq!(components("/a/../b"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn normal_split() {
        assert_eq!(
            components("/home/user/f.txt").unwrap(),
            vec!["home", "user", "f.txt"]
        );
        // duplicated separators collapse
        assert_eq!(components("/home//user").unwrap(), vec!["home", "user"]);
    }

    #[test]
    fn split_parent_works() {
        let (parent, name) = split_parent("/home/foo.txt").unwrap();
        assert_eq!(parent, vec!["home"]);
        assert_eq!(name, "foo.txt");
        let (parent, name) = split_parent("/top").unwrap();
        assert!(parent.is_empty());
        assert_eq!(name, "top");
        assert_eq!(split_parent("/"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn long_names_rejected() {
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert_eq!(validate_name(&long), Err(FsError::NameTooLong));
        let ok = "x".repeat(MAX_NAME_LEN);
        assert!(validate_name(&ok).is_ok());
    }

    #[test]
    fn overlong_path_rejected() {
        let p = format!("/{}", "a/".repeat(MAX_PATH_LEN));
        assert_eq!(components(&p), Err(FsError::InvalidArgument));
    }

    #[test]
    fn nul_and_slash_rejected_in_names() {
        assert_eq!(validate_name("a\0b"), Err(FsError::InvalidArgument));
        assert_eq!(validate_name("a/b"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn join_roundtrip() {
        for p in ["/", "/a", "/a/b/c", "/home/user/data.bin"] {
            let comps = components(p).unwrap();
            assert_eq!(join(&comps), p.to_string());
        }
    }

    #[test]
    fn prefix_detection() {
        let a = ["a", "b"];
        assert!(is_prefix_of(&a, &["a", "b"]));
        assert!(is_prefix_of(&a, &["a", "b", "c"]));
        assert!(!is_prefix_of(&a, &["a"]));
        assert!(!is_prefix_of(&a, &["a", "c", "b"]));
        assert!(is_prefix_of(&[], &["a"])); // root is everyone's ancestor
    }
}
