//! Shared near-POSIX filesystem ABI.
//!
//! Every file system in this workspace — ArkFS itself and the baseline
//! simulators (CephFS, MarFS, S3FS, goofys) — implements the [`Vfs`] trait
//! defined here, so workloads and benchmarks are generic over the file
//! system under test.
//!
//! The trait mirrors the POSIX surface the paper exercises: hierarchical
//! namespace, `open`/`create`/`read`/`write`/`fsync`, `stat`/`readdir`,
//! `unlink`/`rmdir`/`rename`, ownership/mode changes and POSIX ACLs.
//! Timestamps are plain nanosecond counters supplied by the caller's clock
//! (virtual or real), which keeps the ABI independent of the simulation
//! kit.

pub mod acl;
pub mod error;
pub mod path;
pub mod perm;
pub mod types;

pub use acl::{Acl, AclEntry, AclQualifier};
pub use error::{FsError, FsResult};
pub use types::{
    Credentials, DirEntry, FileHandle, FileType, FsStats, Ino, Nanos, OpenFlags, SetAttr, Stat,
    AM_EXEC, AM_READ, AM_WRITE, ROOT_INO,
};

/// The near-POSIX file system interface.
///
/// Paths are absolute, `/`-separated, UTF-8. All operations take the
/// caller's [`Credentials`] so permission checks follow the POSIX access
/// control model (§II, Challenge 1 of the paper).
///
/// Implementations must be usable from many threads at once: each workload
/// process drives the trait object concurrently.
pub trait Vfs: Send + Sync {
    /// Create a directory. Returns the new directory's attributes.
    fn mkdir(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<Stat>;

    /// Remove an empty directory.
    fn rmdir(&self, ctx: &Credentials, path: &str) -> FsResult<()>;

    /// Create a regular file (exclusive) and open it for writing.
    fn create(&self, ctx: &Credentials, path: &str, mode: u32) -> FsResult<FileHandle>;

    /// Open an existing file.
    fn open(&self, ctx: &Credentials, path: &str, flags: OpenFlags) -> FsResult<FileHandle>;

    /// Close an open handle, flushing dirty cached data as the
    /// implementation requires.
    fn close(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()>;

    /// Read up to `buf.len()` bytes at `offset`. Returns bytes read
    /// (0 at or past EOF).
    fn read(
        &self,
        ctx: &Credentials,
        fh: FileHandle,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize>;

    /// Write `data` at `offset`, extending the file if needed.
    fn write(&self, ctx: &Credentials, fh: FileHandle, offset: u64, data: &[u8])
        -> FsResult<usize>;

    /// Flush all dirty state of the handle to the backing store.
    fn fsync(&self, ctx: &Credentials, fh: FileHandle) -> FsResult<()>;

    /// Stat by path.
    fn stat(&self, ctx: &Credentials, path: &str) -> FsResult<Stat>;

    /// List a directory.
    fn readdir(&self, ctx: &Credentials, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Unlink a regular file or symlink.
    fn unlink(&self, ctx: &Credentials, path: &str) -> FsResult<()>;

    /// Rename a file or directory. POSIX semantics: replaces an existing
    /// empty target of matching type.
    fn rename(&self, ctx: &Credentials, from: &str, to: &str) -> FsResult<()>;

    /// Truncate (or extend with zeros) a file by path.
    fn truncate(&self, ctx: &Credentials, path: &str, size: u64) -> FsResult<()>;

    /// Change mode / owner / timestamps.
    fn setattr(&self, ctx: &Credentials, path: &str, attr: &SetAttr) -> FsResult<Stat>;

    /// Create a symbolic link at `path` pointing at `target`.
    fn symlink(&self, ctx: &Credentials, path: &str, target: &str) -> FsResult<Stat>;

    /// Read a symbolic link's target.
    fn readlink(&self, ctx: &Credentials, path: &str) -> FsResult<String>;

    /// Replace the POSIX ACL of a file or directory.
    fn set_acl(&self, ctx: &Credentials, path: &str, acl: &Acl) -> FsResult<()>;

    /// Read the POSIX ACL of a file or directory.
    fn get_acl(&self, ctx: &Credentials, path: &str) -> FsResult<Acl>;

    /// POSIX `access(2)`: check whether `ctx` may access `path` with the
    /// requested mode bits ([`AM_READ`] | [`AM_WRITE`] | [`AM_EXEC`]).
    fn access(&self, ctx: &Credentials, path: &str, mode: u8) -> FsResult<()>;

    /// Flush everything this client has buffered (global sync, used at the
    /// end of every benchmark phase — the paper calls `fsync()` after each
    /// mdtest phase).
    fn sync_all(&self, ctx: &Credentials) -> FsResult<()>;

    /// File-system-wide statistics (`statvfs`/`df`). Implementations may
    /// approximate; the default reports nothing.
    fn statfs(&self, ctx: &Credentials) -> FsResult<FsStats> {
        let _ = ctx;
        Ok(FsStats::default())
    }
}

/// Convenience: write an entire file at a path (create + write + close).
pub fn write_file(fs: &dyn Vfs, ctx: &Credentials, path: &str, data: &[u8]) -> FsResult<()> {
    let fh = fs.create(ctx, path, 0o644)?;
    let mut off = 0u64;
    while (off as usize) < data.len() {
        let n = fs.write(ctx, fh, off, &data[off as usize..])?;
        if n == 0 {
            fs.close(ctx, fh)?;
            return Err(FsError::Io("short write".into()));
        }
        off += n as u64;
    }
    fs.close(ctx, fh)
}

/// Convenience: read an entire file at a path into a vector.
pub fn read_file(fs: &dyn Vfs, ctx: &Credentials, path: &str) -> FsResult<Vec<u8>> {
    let st = fs.stat(ctx, path)?;
    let fh = fs.open(ctx, path, OpenFlags::RDONLY)?;
    let mut out = vec![0u8; st.size as usize];
    let mut off = 0usize;
    while off < out.len() {
        let n = fs.read(ctx, fh, off as u64, &mut out[off..])?;
        if n == 0 {
            break;
        }
        off += n;
    }
    out.truncate(off);
    fs.close(ctx, fh)?;
    Ok(out)
}
