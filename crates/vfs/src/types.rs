//! Core value types of the file system ABI.

/// Inode number. ArkFS uses 128-bit UUIDs (§III-F of the paper); the
/// baselines use small sequential values embedded in the same space.
pub type Ino = u128;

/// Inode number of the root directory in every implementation.
pub const ROOT_INO: Ino = 1;

/// Nanosecond timestamp on the driving clock (virtual or real).
pub type Nanos = u64;

/// Access-mode bit for `access(2)`-style checks: read.
pub const AM_READ: u8 = 0b100;
/// Access-mode bit: write.
pub const AM_WRITE: u8 = 0b010;
/// Access-mode bit: execute / search.
pub const AM_EXEC: u8 = 0b001;

/// What kind of object a directory entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    Regular,
    Directory,
    Symlink,
}

impl FileType {
    /// Stable on-wire discriminant (used by the ArkFS codec).
    pub fn as_u8(self) -> u8 {
        match self {
            FileType::Regular => 0,
            FileType::Directory => 1,
            FileType::Symlink => 2,
        }
    }

    /// Inverse of [`FileType::as_u8`].
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(FileType::Regular),
            1 => Some(FileType::Directory),
            2 => Some(FileType::Symlink),
            _ => None,
        }
    }
}

/// `stat(2)`-style attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    pub ino: Ino,
    pub ftype: FileType,
    /// Permission bits (lower 12 bits meaningful: rwxrwxrwx + setuid etc.).
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub nlink: u32,
    pub size: u64,
    pub atime: Nanos,
    pub mtime: Nanos,
    pub ctime: Nanos,
}

impl Stat {
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Directory
    }
}

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    pub name: String,
    pub ino: Ino,
    pub ftype: FileType,
}

/// An open-file handle. Plain token; the issuing file system keeps the
/// table behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub u64);

/// Open flags, a minimal subset of `O_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags(u32);

impl OpenFlags {
    pub const RDONLY: OpenFlags = OpenFlags(0b0001);
    pub const WRONLY: OpenFlags = OpenFlags(0b0010);
    pub const RDWR: OpenFlags = OpenFlags(0b0011);
    const TRUNC_BIT: u32 = 0b0100;
    const APPEND_BIT: u32 = 0b1000;

    /// Add `O_TRUNC`.
    pub fn truncate(self) -> Self {
        OpenFlags(self.0 | Self::TRUNC_BIT)
    }

    /// Add `O_APPEND`.
    pub fn append(self) -> Self {
        OpenFlags(self.0 | Self::APPEND_BIT)
    }

    pub fn readable(self) -> bool {
        self.0 & Self::RDONLY.0 != 0
    }

    pub fn writable(self) -> bool {
        self.0 & Self::WRONLY.0 != 0
    }

    pub fn is_trunc(self) -> bool {
        self.0 & Self::TRUNC_BIT != 0
    }

    pub fn is_append(self) -> bool {
        self.0 & Self::APPEND_BIT != 0
    }
}

/// Identity of the calling process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    pub uid: u32,
    pub gid: u32,
    /// Supplementary groups.
    pub groups: Vec<u32>,
}

impl Credentials {
    /// The superuser, used by the "administrator daemon" workloads of the
    /// paper's controlled environment.
    pub fn root() -> Self {
        Credentials {
            uid: 0,
            gid: 0,
            groups: Vec::new(),
        }
    }

    /// An unprivileged user with a primary group equal to its uid.
    pub fn user(uid: u32) -> Self {
        Credentials {
            uid,
            gid: uid,
            groups: Vec::new(),
        }
    }

    pub fn is_root(&self) -> bool {
        self.uid == 0
    }

    pub fn in_group(&self, gid: u32) -> bool {
        self.gid == gid || self.groups.contains(&gid)
    }
}

/// File-system-wide statistics (`statvfs`/`df`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Regular files + symlinks + directories in the namespace.
    pub inodes: u64,
    /// Objects held by the backing store (all kinds).
    pub store_objects: u64,
    /// Logical bytes held by the backing store.
    pub store_bytes: u64,
}

/// Attribute-change request for [`crate::Vfs::setattr`]. `None` fields are
/// left unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetAttr {
    pub mode: Option<u32>,
    pub uid: Option<u32>,
    pub gid: Option<u32>,
    pub atime: Option<Nanos>,
    pub mtime: Option<Nanos>,
}

impl SetAttr {
    pub fn chmod(mode: u32) -> Self {
        SetAttr {
            mode: Some(mode),
            ..Default::default()
        }
    }

    pub fn chown(uid: u32, gid: u32) -> Self {
        SetAttr {
            uid: Some(uid),
            gid: Some(gid),
            ..Default::default()
        }
    }

    pub fn is_empty(&self) -> bool {
        *self == SetAttr::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filetype_roundtrip() {
        for ft in [FileType::Regular, FileType::Directory, FileType::Symlink] {
            assert_eq!(FileType::from_u8(ft.as_u8()), Some(ft));
        }
        assert_eq!(FileType::from_u8(3), None);
    }

    #[test]
    fn open_flags_compose() {
        let f = OpenFlags::RDWR.truncate().append();
        assert!(f.readable() && f.writable() && f.is_trunc() && f.is_append());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(!OpenFlags::RDONLY.is_trunc());
    }

    #[test]
    fn credentials_groups() {
        let mut c = Credentials::user(7);
        assert!(c.in_group(7));
        assert!(!c.in_group(8));
        c.groups.push(8);
        assert!(c.in_group(8));
        assert!(Credentials::root().is_root());
        assert!(!c.is_root());
    }

    #[test]
    fn setattr_builders() {
        assert_eq!(SetAttr::chmod(0o755).mode, Some(0o755));
        let o = SetAttr::chown(3, 4);
        assert_eq!((o.uid, o.gid), (Some(3), Some(4)));
        assert!(SetAttr::default().is_empty());
        assert!(!o.is_empty());
    }
}
