//! Error type shared by every file system implementation.

use std::fmt;

/// Result alias used throughout the workspace.
pub type FsResult<T> = Result<T, FsError>;

/// Errors a near-POSIX file system can return, mirroring the errno values
/// the paper's FUSE layer would surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT — path component does not exist.
    NotFound,
    /// EEXIST — exclusive create of an existing name.
    AlreadyExists,
    /// ENOTDIR — a non-final path component is not a directory.
    NotADirectory,
    /// EISDIR — file operation on a directory.
    IsADirectory,
    /// ENOTEMPTY — rmdir / rename onto a non-empty directory.
    NotEmpty,
    /// EACCES — permission denied by mode bits or ACL.
    PermissionDenied,
    /// EPERM — operation not permitted (e.g. non-owner chmod).
    NotPermitted,
    /// EINVAL — malformed path, bad argument, rename into own subtree.
    InvalidArgument,
    /// ENAMETOOLONG — component longer than [`crate::path::MAX_NAME_LEN`].
    NameTooLong,
    /// EBADF — unknown or already-closed file handle.
    BadHandle,
    /// Handle opened without the access right the call needs.
    BadAccessMode,
    /// ESTALE — lease or cached metadata expired under the caller.
    Stale,
    /// EBUSY — resource temporarily held (lease conflict that could not be
    /// forwarded).
    Busy,
    /// ETIMEDOUT — RPC or lease acquisition timed out.
    TimedOut,
    /// ENOSPC — backing object store rejected the write.
    NoSpace,
    /// EIO — backend failure (injected fault, lost object, codec error).
    Io(String),
    /// EXDEV or an operation the implementation does not support
    /// (the baselines are intentionally incomplete where the real systems
    /// are, e.g. MarFS interactive-mode reads).
    Unsupported(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::PermissionDenied => write!(f, "permission denied"),
            FsError::NotPermitted => write!(f, "operation not permitted"),
            FsError::InvalidArgument => write!(f, "invalid argument"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::BadHandle => write!(f, "bad file handle"),
            FsError::BadAccessMode => write!(f, "handle lacks required access mode"),
            FsError::Stale => write!(f, "stale file handle or lease"),
            FsError::Busy => write!(f, "resource busy"),
            FsError::TimedOut => write!(f, "operation timed out"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::Io(msg) => write!(f, "i/o error: {msg}"),
            FsError::Unsupported(what) => write!(f, "operation not supported: {what}"),
        }
    }
}

impl std::error::Error for FsError {}

impl FsError {
    /// The errno-style short code, handy for table output in benches.
    pub fn code(&self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::AlreadyExists => "EEXIST",
            FsError::NotADirectory => "ENOTDIR",
            FsError::IsADirectory => "EISDIR",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::PermissionDenied => "EACCES",
            FsError::NotPermitted => "EPERM",
            FsError::InvalidArgument => "EINVAL",
            FsError::NameTooLong => "ENAMETOOLONG",
            FsError::BadHandle => "EBADF",
            FsError::BadAccessMode => "EBADF",
            FsError::Stale => "ESTALE",
            FsError::Busy => "EBUSY",
            FsError::TimedOut => "ETIMEDOUT",
            FsError::NoSpace => "ENOSPC",
            FsError::Io(_) => "EIO",
            FsError::Unsupported(_) => "ENOTSUP",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_code_are_consistent() {
        let cases = [
            (FsError::NotFound, "ENOENT"),
            (FsError::AlreadyExists, "EEXIST"),
            (FsError::NotADirectory, "ENOTDIR"),
            (FsError::IsADirectory, "EISDIR"),
            (FsError::NotEmpty, "ENOTEMPTY"),
            (FsError::PermissionDenied, "EACCES"),
            (FsError::NotPermitted, "EPERM"),
            (FsError::InvalidArgument, "EINVAL"),
            (FsError::NameTooLong, "ENAMETOOLONG"),
            (FsError::BadHandle, "EBADF"),
            (FsError::Stale, "ESTALE"),
            (FsError::Busy, "EBUSY"),
            (FsError::TimedOut, "ETIMEDOUT"),
            (FsError::NoSpace, "ENOSPC"),
            (FsError::Io("x".into()), "EIO"),
            (FsError::Unsupported("y"), "ENOTSUP"),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_carries_message() {
        let e = FsError::Io("object lost".into());
        assert!(e.to_string().contains("object lost"));
    }
}
