//! The POSIX permission algorithm shared by every implementation.

use crate::acl::Acl;
use crate::error::{FsError, FsResult};
use crate::types::{Credentials, AM_EXEC, AM_WRITE};

/// Check whether `creds` may access an object with the given ownership,
/// mode bits and ACL, with the wanted `rwx` bits (`AM_*` constants).
///
/// Root bypasses read/write checks entirely and execute checks whenever
/// any execute bit is set anywhere (matching Linux).
pub fn check_access(
    creds: &Credentials,
    owner_uid: u32,
    owner_gid: u32,
    mode: u32,
    acl: &Acl,
    want: u8,
) -> FsResult<()> {
    if creds.is_root() {
        if want & AM_EXEC != 0 && mode & 0o111 == 0 && acl.is_empty() {
            return Err(FsError::PermissionDenied);
        }
        return Ok(());
    }
    let granted = match acl.effective_perms(creds, owner_uid, owner_gid, mode) {
        Some(p) => p,
        None => classic_perms(creds, owner_uid, owner_gid, mode),
    };
    if granted & want == want {
        Ok(())
    } else {
        Err(FsError::PermissionDenied)
    }
}

/// The classic owner/group/other selection when no ACL is present.
fn classic_perms(creds: &Credentials, owner_uid: u32, owner_gid: u32, mode: u32) -> u8 {
    if creds.uid == owner_uid {
        ((mode >> 6) & 0o7) as u8
    } else if creds.in_group(owner_gid) {
        ((mode >> 3) & 0o7) as u8
    } else {
        (mode & 0o7) as u8
    }
}

/// Check that `creds` may modify attributes of the object (POSIX: owner or
/// root for chmod; chown restricted to root).
pub fn check_setattr(creds: &Credentials, owner_uid: u32, changing_owner: bool) -> FsResult<()> {
    if creds.is_root() {
        return Ok(());
    }
    if changing_owner {
        // Only root may change ownership.
        return Err(FsError::NotPermitted);
    }
    if creds.uid != owner_uid {
        return Err(FsError::NotPermitted);
    }
    Ok(())
}

/// Check the "sticky + write-on-parent" rule used by unlink/rmdir/rename:
/// the caller needs write+exec on the parent directory, and if the parent
/// has the sticky bit, must own the parent or the victim.
pub fn check_delete(
    creds: &Credentials,
    parent_uid: u32,
    parent_gid: u32,
    parent_mode: u32,
    parent_acl: &Acl,
    victim_uid: u32,
) -> FsResult<()> {
    check_access(
        creds,
        parent_uid,
        parent_gid,
        parent_mode,
        parent_acl,
        AM_WRITE | AM_EXEC,
    )?;
    if parent_mode & 0o1000 != 0
        && !creds.is_root()
        && creds.uid != parent_uid
        && creds.uid != victim_uid
    {
        return Err(FsError::PermissionDenied);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AclEntry;
    use crate::types::{AM_READ, AM_WRITE};

    fn user(uid: u32) -> Credentials {
        Credentials::user(uid)
    }

    #[test]
    fn owner_class() {
        let acl = Acl::default();
        assert!(check_access(&user(5), 5, 5, 0o600, &acl, AM_READ | AM_WRITE).is_ok());
        assert!(check_access(&user(5), 5, 5, 0o400, &acl, AM_WRITE).is_err());
    }

    #[test]
    fn group_class() {
        let acl = Acl::default();
        let mut c = user(6);
        c.groups.push(50);
        assert!(check_access(&c, 1, 50, 0o040, &acl, AM_READ).is_ok());
        assert!(check_access(&c, 1, 50, 0o004, &acl, AM_READ).is_err());
    }

    #[test]
    fn other_class() {
        let acl = Acl::default();
        assert!(check_access(&user(9), 1, 1, 0o604, &acl, AM_READ).is_ok());
        assert!(check_access(&user(9), 1, 1, 0o600, &acl, AM_READ).is_err());
    }

    #[test]
    fn owner_class_is_exclusive() {
        // Owner with 0o077: the owner gets *owner* bits (none), even though
        // group/other would grant access. This is the classic POSIX trap.
        let acl = Acl::default();
        assert!(check_access(&user(5), 5, 5, 0o077, &acl, AM_READ).is_err());
    }

    #[test]
    fn root_bypasses_rw() {
        let acl = Acl::default();
        assert!(check_access(&Credentials::root(), 7, 7, 0o000, &acl, AM_READ | AM_WRITE).is_ok());
    }

    #[test]
    fn root_needs_some_exec_bit() {
        let acl = Acl::default();
        assert!(check_access(&Credentials::root(), 7, 7, 0o000, &acl, AM_EXEC).is_err());
        assert!(check_access(&Credentials::root(), 7, 7, 0o100, &acl, AM_EXEC).is_ok());
        assert!(check_access(&Credentials::root(), 7, 7, 0o001, &acl, AM_EXEC).is_ok());
    }

    #[test]
    fn acl_named_user_grants() {
        let acl = Acl::new(vec![AclEntry::user(42, 0o6)]);
        assert!(check_access(&user(42), 1, 1, 0o700, &acl, AM_READ | AM_WRITE).is_ok());
        assert!(check_access(&user(42), 1, 1, 0o700, &acl, AM_EXEC).is_err());
    }

    #[test]
    fn setattr_rules() {
        assert!(check_setattr(&user(5), 5, false).is_ok());
        assert!(check_setattr(&user(5), 6, false).is_err());
        assert!(check_setattr(&user(5), 5, true).is_err());
        assert!(check_setattr(&Credentials::root(), 5, true).is_ok());
    }

    #[test]
    fn sticky_bit_delete() {
        let acl = Acl::default();
        // world-writable sticky dir like /tmp
        let mode = 0o1777;
        // owner of the victim may delete
        assert!(check_delete(&user(5), 0, 0, mode, &acl, 5).is_ok());
        // stranger may not
        assert!(check_delete(&user(6), 0, 0, mode, &acl, 5).is_err());
        // parent owner may
        assert!(check_delete(&user(7), 7, 7, mode, &acl, 5).is_ok());
        // root may
        assert!(check_delete(&Credentials::root(), 0, 0, mode, &acl, 5).is_ok());
        // without sticky, any writer may
        assert!(check_delete(&user(6), 0, 0, 0o777, &acl, 5).is_ok());
    }

    #[test]
    fn delete_requires_parent_write_exec() {
        let acl = Acl::default();
        assert!(check_delete(&user(5), 5, 5, 0o500, &acl, 5).is_err());
        assert!(check_delete(&user(5), 5, 5, 0o300, &acl, 5).is_ok());
    }
}
