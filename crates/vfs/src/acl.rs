//! POSIX access control lists (the paper's Challenge 1 calls out ACL
//! support as a reason HPC sites cannot use raw object storage).
//!
//! The model follows POSIX.1e: an optional list of named-user and
//! named-group entries plus a mask, layered on top of the classic
//! owner/group/other mode bits. Permissions are 3-bit `rwx` values.

use crate::types::Credentials;

/// Who an ACL entry applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AclQualifier {
    /// A specific user id (`user:alice:rwx`).
    User(u32),
    /// A specific group id (`group:hpc:r-x`).
    Group(u32),
    /// The ACL mask: upper bound for named users, named groups and the
    /// owning group.
    Mask,
}

/// One ACL entry: qualifier plus `rwx` bits (values 0..=7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclEntry {
    pub qualifier: AclQualifier,
    pub perms: u8,
}

impl AclEntry {
    pub fn user(uid: u32, perms: u8) -> Self {
        AclEntry {
            qualifier: AclQualifier::User(uid),
            perms: perms & 0o7,
        }
    }

    pub fn group(gid: u32, perms: u8) -> Self {
        AclEntry {
            qualifier: AclQualifier::Group(gid),
            perms: perms & 0o7,
        }
    }

    pub fn mask(perms: u8) -> Self {
        AclEntry {
            qualifier: AclQualifier::Mask,
            perms: perms & 0o7,
        }
    }
}

/// An access control list. An empty list means "mode bits only".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acl {
    pub entries: Vec<AclEntry>,
}

impl Acl {
    pub fn new(entries: Vec<AclEntry>) -> Self {
        Acl { entries }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The mask entry's permissions, or `rwx` if no mask is present.
    pub fn mask(&self) -> u8 {
        self.entries
            .iter()
            .find(|e| e.qualifier == AclQualifier::Mask)
            .map(|e| e.perms)
            .unwrap_or(0o7)
    }

    /// Resolve the effective permission bits this ACL grants `creds`,
    /// given the file's owner/group and mode bits. Follows the POSIX.1e
    /// evaluation order: owner → named user → owning group / named groups
    /// → other. Returns `None` when the classic algorithm should decide
    /// (empty ACL).
    pub fn effective_perms(
        &self,
        creds: &Credentials,
        owner_uid: u32,
        owner_gid: u32,
        mode: u32,
    ) -> Option<u8> {
        if self.is_empty() {
            return None;
        }
        let mask = self.mask();
        // 1. File owner: mode owner bits, not masked.
        if creds.uid == owner_uid {
            return Some(((mode >> 6) & 0o7) as u8);
        }
        // 2. Named user entry.
        for e in &self.entries {
            if e.qualifier == AclQualifier::User(creds.uid) {
                return Some(e.perms & mask);
            }
        }
        // 3. Owning group and named groups: union of all that match
        //    (POSIX grants access if any matching group entry grants it).
        let mut group_perms: Option<u8> = None;
        if creds.in_group(owner_gid) {
            group_perms = Some(((mode >> 3) & 0o7) as u8);
        }
        for e in &self.entries {
            if let AclQualifier::Group(gid) = e.qualifier {
                if creds.in_group(gid) {
                    group_perms = Some(group_perms.unwrap_or(0) | e.perms);
                }
            }
        }
        if let Some(p) = group_perms {
            return Some(p & mask);
        }
        // 4. Other: mode other bits, not masked.
        Some((mode & 0o7) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creds(uid: u32, gid: u32) -> Credentials {
        Credentials {
            uid,
            gid,
            groups: vec![],
        }
    }

    #[test]
    fn empty_acl_defers_to_mode_bits() {
        let acl = Acl::default();
        assert_eq!(acl.effective_perms(&creds(1, 1), 0, 0, 0o750), None);
    }

    #[test]
    fn owner_uses_mode_owner_bits() {
        let acl = Acl::new(vec![AclEntry::user(5, 0o0)]);
        // uid 5 is also the owner: owner class wins over the named entry.
        assert_eq!(acl.effective_perms(&creds(5, 5), 5, 5, 0o640), Some(0o6));
    }

    #[test]
    fn named_user_entry_masked() {
        let acl = Acl::new(vec![AclEntry::user(7, 0o7), AclEntry::mask(0o5)]);
        assert_eq!(acl.effective_perms(&creds(7, 7), 1, 1, 0o700), Some(0o5));
    }

    #[test]
    fn named_group_entry() {
        let acl = Acl::new(vec![AclEntry::group(30, 0o6)]);
        let mut c = creds(9, 9);
        c.groups.push(30);
        assert_eq!(acl.effective_perms(&c, 1, 1, 0o700), Some(0o6));
    }

    #[test]
    fn owning_group_and_named_group_union() {
        // owning group grants r--, a named group grants -w-; union is rw-,
        // then the mask clips it.
        let acl = Acl::new(vec![AclEntry::group(30, 0o2), AclEntry::mask(0o6)]);
        let mut c = creds(9, 20);
        c.groups.push(30);
        assert_eq!(acl.effective_perms(&c, 1, 20, 0o740), Some(0o6));
    }

    #[test]
    fn falls_through_to_other() {
        let acl = Acl::new(vec![AclEntry::user(7, 0o7)]);
        assert_eq!(acl.effective_perms(&creds(42, 42), 1, 1, 0o751), Some(0o1));
    }

    #[test]
    fn default_mask_is_rwx() {
        let acl = Acl::new(vec![AclEntry::user(7, 0o7)]);
        assert_eq!(acl.mask(), 0o7);
        assert_eq!(acl.effective_perms(&creds(7, 7), 1, 1, 0), Some(0o7));
    }

    #[test]
    fn entry_constructors_clamp_to_three_bits() {
        assert_eq!(AclEntry::user(1, 0xFF).perms, 0o7);
        assert_eq!(AclEntry::group(1, 0o12).perms, 0o2);
        assert_eq!(AclEntry::mask(0o17).perms, 0o7);
    }
}
