//! Differential (model-based) testing: drive the same randomized
//! operation sequence against ArkFS and against the centralized-namespace
//! CephFS simulator, asserting observational equivalence. The two
//! implementations share no metadata code — ArkFS is metatables +
//! journals + leases, CephFS is a single in-memory tree — so agreement is
//! strong evidence both implement the same POSIX semantics.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_baselines::{CephFs, MountType};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::ClusterSpec;
use arkfs_vfs::{read_file, Credentials, FsError, OpenFlags, Vfs};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Create(u8, u8),
    WriteAt(u8, u16, u8, u8), // file selector, offset, value, len
    Read(u8),
    Stat(u8),
    Unlink(u8),
    Rmdir(u8),
    RenameFile(u8, u8),
    Readdir(u8),
    Truncate(u8, u16),
}

fn dir_path(d: u8) -> String {
    format!("/dir{}", d % 4)
}

fn file_path(d: u8, f: u8) -> String {
    format!("{}/file{}", dir_path(d), f % 4)
}

/// Normalize results so only (success, payload/errno) is compared —
/// inode numbers and timestamps legitimately differ.
fn norm<T, F: FnOnce(T) -> String>(r: Result<T, FsError>, f: F) -> Result<String, &'static str> {
    match r {
        Ok(v) => Ok(f(v)),
        Err(e) => Err(e.code()),
    }
}

fn apply(fs: &dyn Vfs, ctx: &Credentials, op: &Op) -> Result<String, &'static str> {
    match op {
        Op::Mkdir(d) => norm(fs.mkdir(ctx, &dir_path(*d), 0o755), |_| "ok".into()),
        Op::Create(d, f) => norm(
            fs.create(ctx, &file_path(*d, *f), 0o644)
                .and_then(|fh| fs.close(ctx, fh)),
            |_| "ok".into(),
        ),
        Op::WriteAt(sel, off, val, len) => {
            let path = file_path(*sel, sel / 4);
            let r = fs.open(ctx, &path, OpenFlags::WRONLY).and_then(|fh| {
                let data = vec![*val; *len as usize % 200 + 1];
                let res = fs.write(ctx, fh, *off as u64 % 500, &data);
                fs.close(ctx, fh)?;
                res
            });
            norm(r, |n| n.to_string())
        }
        Op::Read(sel) => {
            let path = file_path(*sel, sel / 4);
            norm(read_file(fs, ctx, &path), |data| format!("{:?}", data))
        }
        Op::Stat(sel) => {
            let path = file_path(*sel, sel / 4);
            norm(fs.stat(ctx, &path), |st| {
                format!("{:?}:{}", st.ftype, st.size)
            })
        }
        Op::Unlink(sel) => {
            let path = file_path(*sel, sel / 4);
            norm(fs.unlink(ctx, &path), |_| "ok".into())
        }
        Op::Rmdir(d) => norm(fs.rmdir(ctx, &dir_path(*d)), |_| "ok".into()),
        Op::RenameFile(a, b) => {
            let from = file_path(*a, a / 4);
            let to = file_path(*b, b / 4);
            norm(fs.rename(ctx, &from, &to), |_| "ok".into())
        }
        Op::Readdir(d) => norm(fs.readdir(ctx, &dir_path(*d)), |entries| {
            let mut names: Vec<String> = entries
                .into_iter()
                .map(|e| format!("{}:{:?}", e.name, e.ftype))
                .collect();
            names.sort();
            names.join(",")
        }),
        Op::Truncate(sel, size) => {
            let path = file_path(*sel, sel / 4);
            norm(fs.truncate(ctx, &path, *size as u64 % 600), |_| "ok".into())
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Mkdir),
        (any::<u8>(), any::<u8>()).prop_map(|(d, f)| Op::Create(d, f)),
        (any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>())
            .prop_map(|(s, o, v, l)| Op::WriteAt(s, o, v, l)),
        any::<u8>().prop_map(Op::Read),
        any::<u8>().prop_map(Op::Stat),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::RenameFile(a, b)),
        any::<u8>().prop_map(Op::Readdir),
        (any::<u8>(), any::<u16>()).prop_map(|(s, z)| Op::Truncate(s, z)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn arkfs_agrees_with_centralized_namespace(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let ctx = Credentials::root();
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let ark = ArkCluster::new(ArkConfig::test_tiny(), store).client();
        let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
        let ceph = CephFs::new(store, 1, ClusterSpec::test_tiny(), 64)
            .client(MountType::Kernel);
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&*ark, &ctx, op);
            let c = apply(&*ceph, &ctx, op);
            prop_assert_eq!(a, c, "divergence at op {} = {:?}", i, op);
        }
    }
}

#[test]
fn divergence_scenario_rename_chain() {
    // A deterministic regression scenario exercising rename chains and
    // re-creation over both implementations.
    let ctx = Credentials::root();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let ark = ArkCluster::new(ArkConfig::test_tiny(), store).client();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let ceph = CephFs::new(store, 1, ClusterSpec::test_tiny(), 64).client(MountType::Kernel);
    let ops = [
        Op::Mkdir(0),
        Op::Mkdir(1),
        Op::Create(0, 0),
        Op::WriteAt(0, 10, 7, 50),
        Op::RenameFile(0, 1),
        Op::Create(0, 0),
        Op::RenameFile(0, 1), // replaces
        Op::Read(1),
        Op::Readdir(0),
        Op::Readdir(1),
        Op::Unlink(1),
        Op::Rmdir(1),
        Op::Rmdir(0),
    ];
    for (i, op) in ops.iter().enumerate() {
        let a = apply(&*ark, &ctx, op);
        let c = apply(&*ceph, &ctx, op);
        assert_eq!(a, c, "divergence at {i}: {op:?}");
    }
}
