//! POSIX-semantics conformance suite, run against every file system in
//! the workspace that claims (near-)full POSIX: ArkFS and both CephFS
//! mounts. The same assertions driving different architectures is the
//! point: the client-driven metadata service must be observationally
//! equivalent to a centralized MDS.

use arkfs::{ArkCluster, ArkConfig};
use arkfs_baselines::{CephFs, MountType};
use arkfs_objstore::{ClusterConfig, ObjectCluster};
use arkfs_simkit::ClusterSpec;
use arkfs_vfs::{
    read_file, write_file, Credentials, FileType, FsError, OpenFlags, SetAttr, Vfs, AM_READ,
    AM_WRITE,
};
use std::sync::Arc;

fn systems() -> Vec<(&'static str, Arc<dyn Vfs>)> {
    // Fresh deployments per entry: each conformance run gets a pristine
    // namespace.
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let ark = ArkCluster::new(ArkConfig::test_tiny(), store).client();
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let ceph_k = CephFs::new(store, 1, ClusterSpec::test_tiny(), 64);
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let ceph_f = CephFs::new(store, 1, ClusterSpec::test_tiny(), 64);
    vec![
        ("arkfs", ark as Arc<dyn Vfs>),
        ("cephfs-k", ceph_k.client(MountType::Kernel) as Arc<dyn Vfs>),
        ("cephfs-f", ceph_f.client(MountType::Fuse) as Arc<dyn Vfs>),
    ]
}

fn root() -> Credentials {
    Credentials::root()
}

#[test]
fn lifecycle_and_listing() {
    for (name, fs) in systems() {
        let ctx = root();
        fs.mkdir(&ctx, "/a", 0o755).unwrap();
        fs.mkdir(&ctx, "/a/b", 0o755).unwrap();
        write_file(&*fs, &ctx, "/a/b/f1", b"one").unwrap();
        write_file(&*fs, &ctx, "/a/b/f2", b"two2").unwrap();
        let names: Vec<String> = fs
            .readdir(&ctx, "/a/b")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["f1", "f2"], "{name}");
        assert_eq!(fs.stat(&ctx, "/a/b/f2").unwrap().size, 4, "{name}");
        fs.unlink(&ctx, "/a/b/f1").unwrap();
        fs.unlink(&ctx, "/a/b/f2").unwrap();
        fs.rmdir(&ctx, "/a/b").unwrap();
        fs.rmdir(&ctx, "/a").unwrap();
        assert_eq!(fs.readdir(&ctx, "/").unwrap().len(), 0, "{name}");
    }
}

#[test]
fn error_codes_are_posix() {
    for (name, fs) in systems() {
        let ctx = root();
        fs.mkdir(&ctx, "/d", 0o755).unwrap();
        write_file(&*fs, &ctx, "/d/f", b"x").unwrap();
        let cases: Vec<(&str, FsError)> = vec![
            ("stat missing", FsError::NotFound),
            ("mkdir exists", FsError::AlreadyExists),
            ("rmdir nonempty", FsError::NotEmpty),
            ("rmdir file", FsError::NotADirectory),
            ("unlink dir", FsError::IsADirectory),
            ("open dir", FsError::IsADirectory),
            ("notdir midpath", FsError::NotADirectory),
        ];
        for (case, expect) in cases {
            let got = match case {
                "stat missing" => fs.stat(&ctx, "/nope").unwrap_err(),
                "mkdir exists" => fs.mkdir(&ctx, "/d", 0o755).unwrap_err(),
                "rmdir nonempty" => fs.rmdir(&ctx, "/d").unwrap_err(),
                "rmdir file" => fs.rmdir(&ctx, "/d/f").unwrap_err(),
                "unlink dir" => fs.unlink(&ctx, "/d").unwrap_err(),
                "open dir" => fs.open(&ctx, "/d", OpenFlags::RDONLY).unwrap_err(),
                "notdir midpath" => fs.stat(&ctx, "/d/f/deeper").unwrap_err(),
                _ => unreachable!(),
            };
            assert_eq!(got, expect, "{name}: {case}");
        }
    }
}

#[test]
fn rename_semantics() {
    for (name, fs) in systems() {
        let ctx = root();
        fs.mkdir(&ctx, "/src", 0o755).unwrap();
        fs.mkdir(&ctx, "/dst", 0o755).unwrap();
        write_file(&*fs, &ctx, "/src/f", b"payload").unwrap();
        // Cross-directory move preserves data.
        fs.rename(&ctx, "/src/f", "/dst/g").unwrap();
        assert_eq!(
            read_file(&*fs, &ctx, "/dst/g").unwrap(),
            b"payload",
            "{name}"
        );
        assert_eq!(
            fs.stat(&ctx, "/src/f").unwrap_err(),
            FsError::NotFound,
            "{name}"
        );
        // Same-directory replace of a file.
        write_file(&*fs, &ctx, "/dst/h", b"loser").unwrap();
        fs.rename(&ctx, "/dst/g", "/dst/h").unwrap();
        assert_eq!(
            read_file(&*fs, &ctx, "/dst/h").unwrap(),
            b"payload",
            "{name}"
        );
        // Self-rename is a no-op.
        fs.rename(&ctx, "/dst/h", "/dst/h").unwrap();
        // Directory into own subtree is rejected.
        assert_eq!(
            fs.rename(&ctx, "/dst", "/dst/h2").unwrap_err(),
            FsError::InvalidArgument,
            "{name}"
        );
    }
}

#[test]
fn data_integrity_random_offsets() {
    for (name, fs) in systems() {
        let ctx = root();
        // Build a 1000-byte file with overlapping writes; chunk size is
        // 64 so this crosses many chunk boundaries.
        let mut model = vec![0u8; 1000];
        let fh = fs.create(&ctx, "/rand.bin", 0o644).unwrap();
        let writes: [(u64, u8, usize); 6] = [
            (0, 1, 300),
            (250, 2, 100),
            (600, 3, 400),
            (90, 4, 20),
            (950, 5, 50),
            (333, 6, 7),
        ];
        for (off, val, len) in writes {
            fs.write(&ctx, fh, off, &vec![val; len]).unwrap();
            model[off as usize..off as usize + len].fill(val);
        }
        fs.fsync(&ctx, fh).unwrap();
        fs.close(&ctx, fh).unwrap();
        assert_eq!(read_file(&*fs, &ctx, "/rand.bin").unwrap(), model, "{name}");
    }
}

#[test]
fn permissions_and_ownership() {
    for (name, fs) in systems() {
        let ctx = root();
        let alice = Credentials::user(100);
        fs.mkdir(&ctx, "/priv", 0o700).unwrap();
        assert_eq!(
            fs.readdir(&alice, "/priv").unwrap_err(),
            FsError::PermissionDenied,
            "{name}"
        );
        write_file(&*fs, &ctx, "/priv/s", b"secret").unwrap();
        assert_eq!(
            fs.stat(&alice, "/priv/s").unwrap_err(),
            FsError::PermissionDenied,
            "{name}: exec on parent required"
        );
        // Open up the directory, lock down the file.
        fs.setattr(&ctx, "/priv", &SetAttr::chmod(0o755)).unwrap();
        fs.setattr(&ctx, "/priv/s", &SetAttr::chmod(0o600)).unwrap();
        assert!(
            fs.stat(&alice, "/priv/s").is_ok(),
            "{name}: stat needs no read perm"
        );
        assert_eq!(
            fs.access(&alice, "/priv/s", AM_READ).unwrap_err(),
            FsError::PermissionDenied,
            "{name}"
        );
        // chown to alice, then she can read/write.
        fs.setattr(&ctx, "/priv/s", &SetAttr::chown(100, 100))
            .unwrap();
        fs.access(&alice, "/priv/s", AM_READ | AM_WRITE).unwrap();
    }
}

#[test]
fn truncate_and_append() {
    for (name, fs) in systems() {
        let ctx = root();
        write_file(&*fs, &ctx, "/t", &[9u8; 150]).unwrap();
        fs.truncate(&ctx, "/t", 70).unwrap();
        assert_eq!(fs.stat(&ctx, "/t").unwrap().size, 70, "{name}");
        let fh = fs.open(&ctx, "/t", OpenFlags::WRONLY.append()).unwrap();
        fs.write(&ctx, fh, 0, &[7u8; 10]).unwrap();
        fs.close(&ctx, fh).unwrap();
        let data = read_file(&*fs, &ctx, "/t").unwrap();
        assert_eq!(data.len(), 80, "{name}");
        assert!(data[..70].iter().all(|&b| b == 9), "{name}");
        assert!(data[70..].iter().all(|&b| b == 7), "{name}");
    }
}

#[test]
fn symlinks() {
    for (name, fs) in systems() {
        let ctx = root();
        write_file(&*fs, &ctx, "/real", b"here").unwrap();
        let st = fs.symlink(&ctx, "/ln", "/real").unwrap();
        assert_eq!(st.ftype, FileType::Symlink, "{name}");
        assert_eq!(fs.readlink(&ctx, "/ln").unwrap(), "/real", "{name}");
        assert_eq!(
            read_file(&*fs, &ctx, "/ln").unwrap(),
            b"here",
            "{name}: open follows"
        );
        fs.unlink(&ctx, "/ln").unwrap();
        assert!(fs.stat(&ctx, "/real").is_ok(), "{name}: target survives");
    }
}

#[test]
fn mtime_moves_forward() {
    for (name, fs) in systems() {
        let ctx = root();
        fs.mkdir(&ctx, "/m", 0o755).unwrap();
        let before = fs.stat(&ctx, "/m").unwrap().mtime;
        write_file(&*fs, &ctx, "/m/child", b"x").unwrap();
        let after = fs.stat(&ctx, "/m").unwrap().mtime;
        assert!(after >= before, "{name}: dir mtime after create");
        let f_before = fs.stat(&ctx, "/m/child").unwrap().mtime;
        let fh = fs.open(&ctx, "/m/child", OpenFlags::WRONLY).unwrap();
        fs.write(&ctx, fh, 0, b"yy").unwrap();
        fs.fsync(&ctx, fh).unwrap();
        fs.close(&ctx, fh).unwrap();
        let f_after = fs.stat(&ctx, "/m/child").unwrap().mtime;
        assert!(f_after >= f_before, "{name}: file mtime after write");
    }
}
