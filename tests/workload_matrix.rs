//! Workload × file-system matrix: every benchmark workload runs (at toy
//! scale) against every system, asserting the success/error expectations
//! each system's architecture implies.

use arkfs::ArkConfig;
use arkfs_baselines::MountType;
use arkfs_bench::{ark_fleet, ceph_fleet, goofys_fleet, marfs_fleet, s3fs_fleet, System};
use arkfs_workloads::fio::{fio, FioConfig};
use arkfs_workloads::mdtest::{mdtest_easy, mdtest_hard, MdtestEasyConfig, MdtestHardConfig};
use arkfs_workloads::tar::{archive_scenario, ArchiveConfig};
use arkfs_workloads::DatasetSpec;

fn full_posix_systems() -> Vec<System> {
    vec![
        ark_fleet(4, ArkConfig::default(), false),
        ceph_fleet(4, 1, MountType::Kernel, 65536, false),
        ceph_fleet(4, 4, MountType::Fuse, 65536, false),
    ]
}

#[test]
fn mdtest_easy_runs_on_every_posix_system() {
    let cfg = MdtestEasyConfig {
        files_total: 64,
        create_only: false,
        ..Default::default()
    };
    for system in full_posix_systems() {
        let r =
            mdtest_easy(&system.clients, &cfg).unwrap_or_else(|e| panic!("{}: {e}", system.name));
        assert_eq!(r.errors, vec![0, 0, 0], "{}", system.name);
        for phase in &r.phases {
            assert!(phase.ops_per_sec() > 0.0, "{}: {}", system.name, phase.name);
        }
    }
    // MarFS handles the metadata-only phases too.
    let marfs = marfs_fleet(4, 65536);
    let r = mdtest_easy(&marfs.clients, &cfg).unwrap();
    assert_eq!(r.errors, vec![0, 0, 0], "MarFS");
}

#[test]
fn mdtest_hard_error_expectations_per_system() {
    let cfg = MdtestHardConfig {
        files_total: 32,
        dirs: 4,
        file_size: 512,
        seed: 3,
        ..Default::default()
    };
    for system in full_posix_systems() {
        let r =
            mdtest_hard(&system.clients, &cfg).unwrap_or_else(|e| panic!("{}: {e}", system.name));
        assert_eq!(r.errors, vec![0, 0, 0, 0], "{}", system.name);
    }
    // MarFS: WRITE/STAT/DELETE fine, READ errors (§IV-B).
    let marfs = marfs_fleet(4, 65536);
    let r = mdtest_hard(&marfs.clients, &cfg).unwrap();
    assert_eq!(r.errors[0], 0, "MarFS WRITE");
    assert_eq!(r.errors[1], 0, "MarFS STAT");
    assert_eq!(r.errors[2], 32, "MarFS READ must error");
    assert_eq!(r.errors[3], 0, "MarFS DELETE");
}

#[test]
fn fio_runs_on_every_data_capable_system() {
    let cfg = FioConfig {
        file_size: 256 * 1024,
        request_size: 16 * 1024,
        ..Default::default()
    };
    let systems = vec![
        ark_fleet(2, ArkConfig::default(), false),
        ceph_fleet(2, 1, MountType::Kernel, 65536, false),
        ceph_fleet(2, 1, MountType::Fuse, 65536, false),
        s3fs_fleet(2, 65536, false),
        goofys_fleet(2, 65536, 8 * 1024 * 1024, false),
    ];
    for system in systems {
        let r = fio(&system.clients, &cfg).unwrap_or_else(|e| panic!("{}: {e}", system.name));
        assert!(r.write_mib_s() > 0.0, "{} write", system.name);
        assert!(r.read_mib_s() > 0.0, "{} read", system.name);
    }
}

#[test]
fn archive_scenario_runs_on_arkfs_and_cephfs() {
    let cfg = ArchiveConfig {
        dataset: DatasetSpec::scaled(30, 512, 9),
        ebs_bw: 1_000_000_000,
    };
    for system in [
        ark_fleet(2, ArkConfig::default(), false),
        ceph_fleet(2, 1, MountType::Kernel, 65536, false),
        ceph_fleet(2, 1, MountType::Fuse, 65536, false),
    ] {
        let r = archive_scenario(&system.clients, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", system.name));
        assert!(r.archive_ns > 0 && r.unarchive_ns > 0, "{}", system.name);
    }
}
