//! Crash-consistency and fault-injection tests spanning the object
//! store, the journal, the lease manager, and multiple clients (§III-E).

use arkfs::{ArkCluster, ArkConfig};
use arkfs_objstore::{ClusterConfig, KeyKind, ObjectCluster, ObjectKey, ObjectStore};
use arkfs_simkit::{Port, MSEC};
use arkfs_vfs::{read_file, write_file, Credentials, FsError, Vfs};
use std::sync::Arc;

fn crash_config() -> ArkConfig {
    // Journal window 0: every acknowledged mutation is durable in the
    // journal; short leases so takeovers run fast in virtual time.
    ArkConfig::test_tiny()
        .with_journal_window(0)
        .with_lease_period(MSEC, MSEC)
}

fn setup(config: ArkConfig) -> (Arc<ObjectCluster>, Arc<ArkCluster>) {
    let store = Arc::new(ObjectCluster::new(ClusterConfig::test_tiny()));
    let cluster = ArkCluster::new(config, Arc::clone(&store) as Arc<dyn ObjectStore>);
    (store, cluster)
}

fn root() -> Credentials {
    Credentials::root()
}

#[test]
fn crash_after_journal_commit_preserves_namespace_and_data() {
    let (_store, cluster) = setup(crash_config());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/w", 0o755).unwrap();
    // Data + metadata: fsync makes both durable.
    write_file(&*c1, &ctx, "/w/a.bin", &[7u8; 300]).unwrap();
    write_file(&*c1, &ctx, "/w/b.bin", &[8u8; 100]).unwrap();
    c1.rename(&ctx, "/w/b.bin", "/w/c.bin").unwrap();
    c1.unlink(&ctx, "/w/a.bin").unwrap();
    c1.crash();

    let c2 = cluster.client();
    c2.port().advance(10 * MSEC);
    let names: Vec<String> = c2
        .readdir(&ctx, "/w")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["c.bin"]);
    assert_eq!(read_file(&*c2, &ctx, "/w/c.bin").unwrap(), [8u8; 100]);
    assert_eq!(c2.stat(&ctx, "/w/a.bin"), Err(FsError::NotFound));
}

#[test]
fn crash_mid_cross_directory_rename_resolves_consistently() {
    let (_store, cluster) = setup(crash_config());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/s", 0o755).unwrap();
    c1.mkdir(&ctx, "/t", 0o755).unwrap();
    write_file(&*c1, &ctx, "/s/f", b"moving").unwrap();
    c1.rename(&ctx, "/s/f", "/t/g").unwrap();
    c1.crash();

    let c2 = cluster.client();
    c2.port().advance(10 * MSEC);
    // After recovery the file exists in exactly one place with its data.
    let in_s = c2.stat(&ctx, "/s/f").is_ok();
    let in_t = c2.stat(&ctx, "/t/g").is_ok();
    assert!(
        in_t && !in_s,
        "rename must be atomic across crashes (s={in_s} t={in_t})"
    );
    assert_eq!(read_file(&*c2, &ctx, "/t/g").unwrap(), b"moving");
}

#[test]
fn torn_journal_transaction_is_skipped() {
    let (store, cluster) = setup(crash_config());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/j", 0o755).unwrap();
    write_file(&*c1, &ctx, "/j/good", b"ok").unwrap();
    let dir_ino = c1.stat(&ctx, "/j").unwrap().ino;
    c1.crash();

    // Corrupt the tail of the newest journal object (simulated torn
    // write): recovery must keep the intact prefix and not error out.
    let port = Port::new();
    let seqs: Vec<u64> = store
        .list(&port, Some(KeyKind::Journal), Some(dir_ino))
        .unwrap()
        .into_iter()
        .map(|k| k.index)
        .collect();
    let last = *seqs.last().expect("journal must exist after crash");
    let key = ObjectKey::journal(dir_ino, last);
    let data = store.get(&port, key).unwrap();
    store.put(&port, key, data.slice(..data.len() / 2)).unwrap();

    let c2 = cluster.client();
    c2.port().advance(10 * MSEC);
    // The directory is still usable; the torn transaction's effects may
    // be lost but nothing is corrupted.
    let entries = c2.readdir(&ctx, "/j").unwrap();
    assert!(entries.len() <= 1);
    write_file(&*c2, &ctx, "/j/after", b"recovered").unwrap();
    assert_eq!(read_file(&*c2, &ctx, "/j/after").unwrap(), b"recovered");
}

#[test]
fn lost_inode_object_surfaces_as_io_error_not_panic() {
    let (store, cluster) = setup(ArkConfig::test_tiny());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/d", 0o755).unwrap();
    write_file(&*c1, &ctx, "/d/f", b"x").unwrap();
    c1.release_all(&ctx).unwrap();
    let ino = {
        let c_probe = cluster.client();
        let st = c_probe.stat(&ctx, "/d/f").unwrap();
        c_probe.release_all(&ctx).unwrap();
        st.ino
    };
    // Lose the child's inode object; a fresh leader fails to build the
    // metatable and reports an error instead of panicking.
    store.faults.lose_object(ObjectKey::inode(ino));
    let c2 = cluster.client();
    let r = c2.readdir(&ctx, "/d");
    assert!(r.is_err(), "lost inode must surface as an error: {r:?}");
    store.faults.clear();
    assert!(c2.readdir(&ctx, "/d").is_ok());
}

#[test]
fn injected_put_failures_do_not_lose_acknowledged_state() {
    let (store, cluster) = setup(crash_config());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/inj", 0o755).unwrap();
    write_file(&*c1, &ctx, "/inj/before", b"1").unwrap();
    // Fail the next few journal puts: affected operations must report
    // errors, not silently succeed.
    store.faults.fail_next_puts(2, Some(KeyKind::Journal));
    let r1 = write_file(&*c1, &ctx, "/inj/during", b"2");
    store.faults.clear();
    if r1.is_err() {
        // The failed create may or may not have registered; what matters
        // is that the acknowledged file is intact and the FS keeps
        // working.
        assert_eq!(read_file(&*c1, &ctx, "/inj/before").unwrap(), b"1");
    }
    write_file(&*c1, &ctx, "/inj/after", b"3").unwrap();
    assert_eq!(read_file(&*c1, &ctx, "/inj/after").unwrap(), b"3");
}

#[test]
fn lease_manager_crash_preserves_in_flight_leaders() {
    let config = crash_config();
    let (_store, cluster) = setup(config);
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/live", 0o755).unwrap();
    write_file(&*c1, &ctx, "/live/warm", b"x").unwrap();
    cluster.crash_lease_manager();
    // The leader keeps serving its directory during the outage.
    write_file(&*c1, &ctx, "/live/during", b"y").unwrap();
    c1.sync_all(&ctx).unwrap();
    // Restart; after the grace period, a new client takes over.
    cluster.restart_lease_manager(c1.port().now());
    let c2 = cluster.client();
    c2.port().advance(c1.port().now() + 20 * MSEC);
    c1.port().advance(20 * MSEC);
    assert_eq!(read_file(&*c2, &ctx, "/live/during").unwrap(), b"y");
}

#[test]
fn double_crash_double_recovery() {
    let (_store, cluster) = setup(crash_config());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/dd", 0o755).unwrap();
    write_file(&*c1, &ctx, "/dd/one", b"1").unwrap();
    c1.crash();

    let c2 = cluster.client();
    c2.port().advance(10 * MSEC);
    write_file(&*c2, &ctx, "/dd/two", b"2").unwrap();
    c2.crash();

    let c3 = cluster.client();
    c3.port().advance(c2.port().now() + 10 * MSEC);
    let mut names: Vec<String> = c3
        .readdir(&ctx, "/dd")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    names.sort();
    assert_eq!(names, vec!["one", "two"]);
    assert_eq!(read_file(&*c3, &ctx, "/dd/one").unwrap(), b"1");
    assert_eq!(read_file(&*c3, &ctx, "/dd/two").unwrap(), b"2");
}

#[test]
fn recovery_is_idempotent_across_repeated_takeovers() {
    let (_store, cluster) = setup(crash_config());
    let ctx = root();
    let c1 = cluster.client();
    c1.mkdir(&ctx, "/idem", 0o755).unwrap();
    for i in 0..10 {
        write_file(&*c1, &ctx, &format!("/idem/f{i}"), &[i as u8]).unwrap();
    }
    c1.crash();
    let mut last_now = 0;
    // Three successive clients each take over, read, and crash.
    for round in 0..3 {
        let c = cluster.client();
        c.port().advance(last_now + 10 * MSEC);
        let entries = c.readdir(&ctx, "/idem").unwrap();
        assert_eq!(entries.len(), 10, "round {round}");
        last_now = c.port().now();
        c.crash();
    }
}

#[test]
fn chaos_crash_recovery_loop_never_loses_acknowledged_files() {
    // Randomized crash loop: each round a fresh client creates a batch of
    // files (all acknowledged via the zero-window journal), then either
    // crashes or releases cleanly. Every later round must see EVERY file
    // acknowledged so far.
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let (_store, cluster) = setup(crash_config());
    let ctx = root();
    let mut rng = StdRng::seed_from_u64(0xC4A05);
    let mut acknowledged: Vec<String> = Vec::new();
    let mut last_now = 0u64;

    let bootstrap = cluster.client();
    bootstrap.mkdir(&ctx, "/chaos", 0o755).unwrap();
    bootstrap.release_all(&ctx).unwrap();
    let mut bootstrap_now = bootstrap.port().now();

    for round in 0..12 {
        let c = cluster.client();
        c.port().advance(last_now.max(bootstrap_now) + 10 * MSEC);
        bootstrap_now = 0;
        // Verify everything acknowledged so far survived.
        let listed: std::collections::HashSet<String> = c
            .readdir(&ctx, "/chaos")
            .unwrap_or_else(|e| panic!("round {round}: readdir failed: {e}"))
            .into_iter()
            .map(|e| e.name)
            .collect();
        for name in &acknowledged {
            assert!(listed.contains(name), "round {round}: lost {name}");
        }
        // Create a new batch.
        let batch = rng.random_range(1..6);
        for k in 0..batch {
            let name = format!("r{round}-f{k}");
            write_file(&*c, &ctx, &format!("/chaos/{name}"), name.as_bytes()).unwrap();
            acknowledged.push(name);
        }
        last_now = c.port().now();
        if rng.random_bool(0.6) {
            c.crash();
        } else {
            c.release_all(&ctx).unwrap();
            last_now = c.port().now();
        }
    }
    // Final integrity check including contents.
    let c = cluster.client();
    c.port().advance(last_now + 10 * MSEC);
    for name in &acknowledged {
        let body = read_file(&*c, &ctx, &format!("/chaos/{name}")).unwrap();
        assert_eq!(body, name.as_bytes(), "content of {name}");
    }
}

#[test]
fn concurrent_clients_hammer_one_directory() {
    // Real-thread stress: 8 clients create files in the SAME directory
    // simultaneously (leader + 7 forwarders). All names must exist once,
    // with correct contents, and no client may observe an error.
    let (_store, cluster) = setup(ArkConfig::test_tiny());
    let ctx = root();
    let c0 = cluster.client();
    c0.mkdir(&ctx, "/shared", 0o755).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let c = cluster.client();
            std::thread::spawn(move || {
                let ctx = Credentials::root();
                for j in 0..25 {
                    let path = format!("/shared/c{i}-f{j}");
                    write_file(&*c, &ctx, &path, path.as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
    let entries = c0.readdir(&ctx, "/shared").unwrap();
    assert_eq!(entries.len(), 8 * 25);
    // Spot-check contents through a fresh client.
    let probe = cluster.client();
    for path in ["/shared/c0-f0", "/shared/c7-f24", "/shared/c3-f12"] {
        assert_eq!(read_file(&*probe, &ctx, path).unwrap(), path.as_bytes());
    }
}
